#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

namespace snnfi::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.max_workers(), 4u);
    std::vector<std::atomic<int>> counts(100);
    pool.parallel_for(100, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsSerially) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.max_workers(), 1u);
    std::vector<int> order;
    pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, IndexedResultsIdenticalAcrossWorkerCounts) {
    auto compute = [](std::size_t workers) {
        ThreadPool pool(workers);
        std::vector<double> out(64);
        pool.parallel_for(64, [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 1.5 - 3.0;
        });
        return out;
    };
    EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, EmptyAndReuse) {
    ThreadPool pool(3);
    pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
    std::atomic<int> total{0};
    for (int round = 0; round < 5; ++round)
        pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, PropagatesException) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(8,
                                   [](std::size_t i) {
                                       if (i == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // Pool stays usable after a failed job.
    std::atomic<int> ran{0};
    pool.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, NestedCallFallsBackToSerial) {
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallel_for(4, [&](std::size_t) {
        pool.parallel_for(3, [&](std::size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPool, ConcurrentCallFromSecondThreadThrows) {
    ThreadPool pool(2);
    std::promise<void> started;
    std::promise<void> release;
    std::shared_future<void> release_future = release.get_future().share();
    std::thread runner([&] {
        pool.parallel_for(2, [&](std::size_t i) {
            if (i == 0) started.set_value();
            release_future.wait();
        });
    });
    started.get_future().wait();  // first job is definitely in flight
    EXPECT_THROW(pool.parallel_for(2, [](std::size_t) {}), std::logic_error);
    release.set_value();
    runner.join();
}

TEST(ResolveWorkerCount, ZeroMeansHardware) {
    EXPECT_GE(resolve_worker_count(0), 1u);
    EXPECT_EQ(resolve_worker_count(7), 7u);
}

// Regression: `workers == 0` must clamp to at least one usable worker (the
// caller) instead of constructing an empty, dead pool.
TEST(ThreadPool, ZeroWorkersClampsAndRuns) {
    ThreadPool pool(0);
    EXPECT_GE(pool.max_workers(), 1u);
    std::atomic<int> ran{0};
    pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 16);
}

// Regression: an exception thrown on a *pool* thread (not the
// participating caller) must reach the caller instead of terminating. The
// caller's indices block until a pool thread has thrown and never throw
// themselves, so the propagated error is guaranteed to originate off the
// caller.
TEST(ThreadPool, WorkerThreadExceptionReachesCaller) {
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<bool> worker_threw{false};
    try {
        pool.parallel_for(64, [&](std::size_t) {
            if (std::this_thread::get_id() == caller) {
                while (!worker_threw.load()) std::this_thread::yield();
                return;
            }
            worker_threw.store(true);
            throw std::runtime_error("pool-thread failure");
        });
        FAIL() << "expected the pool-thread exception to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "pool-thread failure");
    }
    EXPECT_TRUE(worker_threw.load());
    // Pool stays usable after the failed job.
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

// TSan target: tear a pool down immediately after jobs in which several
// workers throw at once. Exercises the stopping_/job_ handshake and the
// first-error-wins write to job.error under real contention; run under
// `-DSNNFI_SANITIZE=thread` this is the shutdown-race detector.
TEST(ThreadPoolStress, RapidCreateThrowDestroyCycles) {
    for (int cycle = 0; cycle < 50; ++cycle) {
        ThreadPool pool(4);
        std::atomic<int> ran{0};
        try {
            pool.parallel_for(32, [&](std::size_t i) {
                ran.fetch_add(1);
                if (i % 5 == 0) throw std::runtime_error("stress");
            });
            FAIL() << "expected at least one throw to propagate";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "stress");
        }
        EXPECT_GT(ran.load(), 0);
        // Destructor runs here, possibly while workers are still parked
        // between the failed job and the next wait.
    }
}

// TSan target: two threads hammer the same pool concurrently. By contract
// exactly one job runs at a time; the loser must get logic_error and
// every accepted index must still run exactly once.
TEST(ThreadPoolStress, CompetingSubmittersSerializeOrThrow) {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    std::atomic<int> rejected{0};
    auto submit_loop = [&] {
        for (int round = 0; round < 40; ++round) {
            try {
                pool.parallel_for(16, [&](std::size_t) { total.fetch_add(1); });
            } catch (const std::logic_error&) {
                rejected.fetch_add(1);
            }
        }
    };
    std::thread rival(submit_loop);
    submit_loop();
    rival.join();
    // Every job that was accepted ran all 16 indices; rejected ones ran none.
    EXPECT_EQ(total.load(), (80 - rejected.load()) * 16);
}

// TSan target: destruction races the tail of a completed job — the caller
// returns from parallel_for on its own thread while pool workers may still
// be inside the run loop re-checking the predicate.
TEST(ThreadPoolStress, DestroyImmediatelyAfterCompletion) {
    for (int cycle = 0; cycle < 100; ++cycle) {
        std::atomic<int> ran{0};
        {
            ThreadPool pool(3);
            pool.parallel_for(9, [&](std::size_t) { ran.fetch_add(1); });
        }
        EXPECT_EQ(ran.load(), 9);
    }
}

}  // namespace
}  // namespace snnfi::util
