#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace snnfi::util {
namespace {

ArgParser make_parser() {
    ArgParser parser("test program");
    parser.add_option("samples", "100", "sample count");
    parser.add_option("rate", "1.5", "a rate");
    parser.add_flag("verbose", "verbosity");
    return parser;
}

int parse(ArgParser& parser, std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return parser.parse(static_cast<int>(args.size()), args.data()) ? 1 : 0;
}

TEST(ArgParser, Defaults) {
    auto parser = make_parser();
    ASSERT_EQ(parse(parser, {}), 1);
    EXPECT_EQ(parser.get_int("samples"), 100);
    EXPECT_DOUBLE_EQ(parser.get_double("rate"), 1.5);
    EXPECT_FALSE(parser.get_bool("verbose"));
    EXPECT_FALSE(parser.was_set("samples"));
}

TEST(ArgParser, EqualsForm) {
    auto parser = make_parser();
    ASSERT_EQ(parse(parser, {"--samples=250"}), 1);
    EXPECT_EQ(parser.get_int("samples"), 250);
    EXPECT_TRUE(parser.was_set("samples"));
}

TEST(ArgParser, SpaceForm) {
    auto parser = make_parser();
    ASSERT_EQ(parse(parser, {"--rate", "2.75"}), 1);
    EXPECT_DOUBLE_EQ(parser.get_double("rate"), 2.75);
}

TEST(ArgParser, BooleanFlag) {
    auto parser = make_parser();
    ASSERT_EQ(parse(parser, {"--verbose"}), 1);
    EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagThrows) {
    auto parser = make_parser();
    EXPECT_THROW(parse(parser, {"--bogus"}), std::invalid_argument);
}

TEST(ArgParser, MissingValueThrows) {
    auto parser = make_parser();
    EXPECT_THROW(parse(parser, {"--samples"}), std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentRejected) {
    auto parser = make_parser();
    EXPECT_THROW(parse(parser, {"positional"}), std::invalid_argument);
}

TEST(ArgParser, BadNumberThrows) {
    auto parser = make_parser();
    ASSERT_EQ(parse(parser, {"--samples=12x"}), 1);
    EXPECT_THROW(parser.get_int("samples"), std::invalid_argument);
}

TEST(ArgParser, HelpShortCircuits) {
    auto parser = make_parser();
    testing::internal::CaptureStdout();
    EXPECT_EQ(parse(parser, {"--help"}), 0);
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("sample count"), std::string::npos);
}

TEST(ArgParser, ListValuedOptionSplitsOnCommas) {
    ArgParser parser("p");
    parser.add_option("deltas", "-0.2,-0.1,0.1,0.2", "threshold deltas");
    ASSERT_EQ(parse(parser, {}), 1);
    EXPECT_EQ(parser.get_doubles("deltas"),
              (std::vector<double>{-0.2, -0.1, 0.1, 0.2}));

    ArgParser parser2("p");
    parser2.add_option("deltas", "", "threshold deltas");
    ASSERT_EQ(parse(parser2, {"--deltas=0.5,1.5"}), 1);
    EXPECT_EQ(parser2.get_doubles("deltas"), (std::vector<double>{0.5, 1.5}));
    EXPECT_EQ(parser2.get_strings("deltas"),
              (std::vector<std::string>{"0.5", "1.5"}));
}

TEST(ArgParser, RepeatedOptionAccumulates) {
    ArgParser parser("p");
    parser.add_option("tag", "", "tags");
    ASSERT_EQ(parse(parser, {"--tag=a,b", "--tag", "c"}), 1);
    EXPECT_EQ(parser.get_strings("tag"), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(parser.get("tag"), "c");  // scalar get: last occurrence wins
}

TEST(ArgParser, EmptyListAndBadNumbers) {
    ArgParser parser("p");
    parser.add_option("xs", "", "numbers");
    ASSERT_EQ(parse(parser, {}), 1);
    EXPECT_TRUE(parser.get_doubles("xs").empty());

    ArgParser parser2("p");
    parser2.add_option("xs", "", "numbers");
    ASSERT_EQ(parse(parser2, {"--xs=1,zap"}), 1);
    EXPECT_THROW(parser2.get_doubles("xs"), std::invalid_argument);
}

TEST(ArgParser, UnregisteredGetThrows) {
    auto parser = make_parser();
    ASSERT_EQ(parse(parser, {}), 1);
    EXPECT_THROW(parser.get("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace snnfi::util
