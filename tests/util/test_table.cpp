#include "util/table.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace snnfi::util {
namespace {

ResultTable sample_table() {
    ResultTable table("Demo", {"name", "value"});
    table.add_row({std::string("alpha"), 1.5});
    table.add_row({std::string("beta"), -2.25});
    return table;
}

TEST(ResultTable, Dimensions) {
    const auto table = sample_table();
    EXPECT_EQ(table.num_rows(), 2u);
    EXPECT_EQ(table.num_columns(), 2u);
    EXPECT_EQ(table.title(), "Demo");
}

TEST(ResultTable, RejectsEmptyColumnsAndBadRows) {
    EXPECT_THROW(ResultTable("x", {}), std::invalid_argument);
    auto table = sample_table();
    EXPECT_THROW(table.add_row({std::string("only-one")}), std::invalid_argument);
}

TEST(ResultTable, CellAccess) {
    const auto table = sample_table();
    EXPECT_EQ(std::get<std::string>(table.at(0, 0)), "alpha");
    EXPECT_DOUBLE_EQ(table.number_at(1, 1), -2.25);
    EXPECT_THROW(table.number_at(0, 0), std::invalid_argument);
    EXPECT_THROW(table.at(5, 0), std::out_of_range);
}

TEST(ResultTable, NumericColumn) {
    const auto table = sample_table();
    const auto values = table.numeric_column(1);
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[0], 1.5);
    EXPECT_THROW(sample_table().numeric_column(0), std::invalid_argument);
}

TEST(ResultTable, PrintContainsHeaderAndCells) {
    auto table = sample_table();
    table.add_note("a caption");
    const std::string text = table.to_string();
    EXPECT_NE(text.find("Demo"), std::string::npos);
    EXPECT_NE(text.find("a caption"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.5000"), std::string::npos);  // default 4 digits
}

TEST(ResultTable, PrecisionControl) {
    auto table = sample_table();
    table.set_precision(1, 1);
    EXPECT_NE(table.to_string().find("1.5"), std::string::npos);
    EXPECT_EQ(table.to_string().find("1.5000"), std::string::npos);
    EXPECT_THROW(table.set_precision(7, 2), std::out_of_range);
}

TEST(ResultTable, CsvFormatAndEscaping) {
    ResultTable table("T", {"a,b", "note"});
    table.add_row({std::string("va\"l"), std::string("line1\nline2")});
    const std::string csv = table.to_csv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"va\"\"l\""), std::string::npos);
    EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
}

TEST(ResultTable, JsonStructureAndNumbers) {
    auto table = sample_table();
    table.add_note("a note");
    const std::string json = table.to_json();
    EXPECT_EQ(json,
              "{\"title\":\"Demo\",\"columns\":[\"name\",\"value\"],"
              "\"notes\":[\"a note\"],"
              "\"rows\":[[\"alpha\",1.5],[\"beta\",-2.25]]}");
}

TEST(ResultTable, JsonEscapesSpecialCharacters) {
    ResultTable table("Ti\"tle\\", {"col\n1"});
    table.add_row({std::string("tab\there \"quoted\"")});
    table.add_note("control:\x01");
    const std::string json = table.to_json();
    EXPECT_NE(json.find("\"Ti\\\"tle\\\\\""), std::string::npos);
    EXPECT_NE(json.find("\"col\\n1\""), std::string::npos);
    EXPECT_NE(json.find("tab\\there \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("control:\\u0001"), std::string::npos);
}

TEST(ResultTable, JsonNonFiniteBecomesNull) {
    ResultTable table("T", {"x"});
    table.add_row({std::numeric_limits<double>::quiet_NaN()});
    table.add_row({std::numeric_limits<double>::infinity()});
    const std::string json = table.to_json();
    EXPECT_NE(json.find("[null],[null]"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ResultTable, CsvRoundTripWithQuotesAndCommas) {
    ResultTable table("T", {"a,b", "plain", "tricky"});
    table.add_row({std::string("va\"l"), std::string("x"),
                   std::string("line1\nline2, with comma")});
    table.add_row({std::string("\"fully quoted\""), std::string(""),
                   std::string("commas,,everywhere")});
    const auto records = parse_csv(table.to_csv());
    ASSERT_EQ(records.size(), 3u);  // header + 2 rows
    EXPECT_EQ(records[0], (std::vector<std::string>{"a,b", "plain", "tricky"}));
    EXPECT_EQ(records[1],
              (std::vector<std::string>{"va\"l", "x", "line1\nline2, with comma"}));
    EXPECT_EQ(records[2], (std::vector<std::string>{"\"fully quoted\"", "",
                                                    "commas,,everywhere"}));
}

TEST(ParseCsv, HandlesEmptyAndUnquoted) {
    EXPECT_TRUE(parse_csv("").empty());
    const auto records = parse_csv("a,b\n1,2\n");
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ResultTable, StreamOperator) {
    std::ostringstream os;
    os << sample_table();
    EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace snnfi::util
