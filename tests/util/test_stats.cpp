#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace snnfi::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({}), 0.0);
    const std::vector<double> one = {3.0};
    EXPECT_DOUBLE_EQ(mean(one), 3.0);
    EXPECT_DOUBLE_EQ(variance(one), 0.0);
    EXPECT_THROW(min_of({}), std::invalid_argument);
    EXPECT_THROW(max_of({}), std::invalid_argument);
    EXPECT_THROW(median({}), std::invalid_argument);
    EXPECT_THROW(argmax({}), std::invalid_argument);
}

TEST(Stats, MinMaxArgmax) {
    const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
    EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
    EXPECT_EQ(argmax(xs), 2u);
}

TEST(Stats, MedianOddEven) {
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, PercentChange) {
    EXPECT_DOUBLE_EQ(percent_change(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(percent_change(80.0, 100.0), -20.0);
    EXPECT_DOUBLE_EQ(percent_change(-0.4, -0.5), 20.0);  // |reference| in denominator
    EXPECT_THROW(percent_change(1.0, 0.0), std::invalid_argument);
}

TEST(Stats, Linspace) {
    const auto pts = linspace(0.8, 1.2, 5);
    ASSERT_EQ(pts.size(), 5u);
    EXPECT_DOUBLE_EQ(pts.front(), 0.8);
    EXPECT_DOUBLE_EQ(pts.back(), 1.2);
    EXPECT_NEAR(pts[2], 1.0, 1e-12);
    EXPECT_EQ(linspace(0, 1, 0).size(), 0u);
    EXPECT_EQ(linspace(5, 9, 1), std::vector<double>{5.0});
}

TEST(Interpolator, ExactAtKnotsLinearBetween) {
    const LinearInterpolator f({0.0, 1.0, 3.0}, {10.0, 20.0, 0.0});
    EXPECT_DOUBLE_EQ(f(0.0), 10.0);
    EXPECT_DOUBLE_EQ(f(1.0), 20.0);
    EXPECT_DOUBLE_EQ(f(3.0), 0.0);
    EXPECT_DOUBLE_EQ(f(0.5), 15.0);
    EXPECT_DOUBLE_EQ(f(2.0), 10.0);
}

TEST(Interpolator, LinearExtrapolation) {
    const LinearInterpolator f({0.0, 1.0}, {0.0, 2.0});
    EXPECT_DOUBLE_EQ(f(2.0), 4.0);
    EXPECT_DOUBLE_EQ(f(-1.0), -2.0);
}

TEST(Interpolator, Validation) {
    EXPECT_THROW(LinearInterpolator({1.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(LinearInterpolator({2.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(LinearInterpolator({1.0}, {0.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(LinearInterpolator({}, {}), std::invalid_argument);
    const LinearInterpolator single({1.0}, {5.0});
    EXPECT_DOUBLE_EQ(single(-10.0), 5.0);
    EXPECT_DOUBLE_EQ(single(10.0), 5.0);
}

TEST(Crossings, RisingFallingAndStart) {
    const std::vector<double> t = {0, 1, 2, 3, 4, 5};
    const std::vector<double> y = {0, 1, 0, 1, 0, 1};
    const auto rising = all_crossings(t, y, 0.5, +1);
    ASSERT_EQ(rising.size(), 3u);
    EXPECT_DOUBLE_EQ(rising[0], 0.5);
    const auto falling = all_crossings(t, y, 0.5, -1);
    ASSERT_EQ(falling.size(), 2u);
    EXPECT_DOUBLE_EQ(falling[0], 1.5);
    const auto either = all_crossings(t, y, 0.5, 0);
    EXPECT_EQ(either.size(), 5u);
    EXPECT_DOUBLE_EQ(first_crossing(t, y, 0.5, +1, 2.0), 2.5);
    EXPECT_LT(first_crossing(t, y, 2.0, +1), 0.0);  // never crosses
}

TEST(Crossings, InterpolatesCrossingTime) {
    const std::vector<double> t = {0.0, 10.0};
    const std::vector<double> y = {0.0, 4.0};
    EXPECT_DOUBLE_EQ(first_crossing(t, y, 1.0, +1), 2.5);
}

/// Property: the interpolator reproduces any sampled linear function.
class InterpolatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpolatorProperty, ReproducesLinearFunctions) {
    Rng rng(GetParam());
    const double slope = rng.uniform(-5.0, 5.0);
    const double offset = rng.uniform(-3.0, 3.0);
    std::vector<double> xs, ys;
    double x = rng.uniform(-2.0, 0.0);
    for (int i = 0; i < 12; ++i) {
        xs.push_back(x);
        ys.push_back(slope * x + offset);
        x += rng.uniform(0.1, 1.0);
    }
    const LinearInterpolator f(xs, ys);
    for (int i = 0; i < 50; ++i) {
        const double probe = rng.uniform(xs.front() - 1.0, xs.back() + 1.0);
        EXPECT_NEAR(f(probe), slope * probe + offset, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, InterpolatorProperty,
                         ::testing::Values(1u, 7u, 99u, 12345u));

}  // namespace
}  // namespace snnfi::util
