// GlitchProfile/GlitchCompiler: constant detection and the static
// FaultSpec form, calibration-sourced profiles, window->step mapping,
// segment merging, and identity elision.
#include "attack/glitch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "snn/model.hpp"
#include "snn/runtime.hpp"

namespace snnfi::attack {
namespace {

snn::DiehlCookConfig tiny_config() {
    snn::DiehlCookConfig cfg;
    cfg.n_neurons = 8;
    cfg.steps_per_sample = 200;
    return cfg;
}

TEST(GlitchProfile, ConstantProfileHasStaticFaultSpecForm) {
    const GlitchProfile profile = GlitchProfile::constant(-0.18, 0.68);
    EXPECT_TRUE(profile.is_constant());
    const FaultSpec spec = profile.to_fault_spec();
    EXPECT_EQ(spec.layer, TargetLayer::kBoth);
    EXPECT_DOUBLE_EQ(spec.fraction, 1.0);
    EXPECT_DOUBLE_EQ(spec.threshold_delta, -0.18);
    EXPECT_DOUBLE_EQ(spec.driver_gain, 0.68);

    // Pure driver corruption maps to the attack-1 shape (no threshold
    // target layer).
    const FaultSpec gain_only = GlitchProfile::constant(0.0, 0.8).to_fault_spec();
    EXPECT_EQ(gain_only.layer, TargetLayer::kNone);
    EXPECT_DOUBLE_EQ(gain_only.driver_gain, 0.8);
}

TEST(GlitchProfile, NonConstantProfilesRejectFaultSpecForm) {
    const GlitchProfile profile({{0.0, 0.5, -0.1, 0.9}, {0.5, 1.0, 0.0, 1.0}});
    EXPECT_FALSE(profile.is_constant());
    EXPECT_THROW(profile.to_fault_spec(), std::logic_error);
    // A gap also breaks constancy even with equal values.
    const GlitchProfile gappy({{0.0, 0.4, -0.1, 0.9}, {0.6, 1.0, -0.1, 0.9}});
    EXPECT_FALSE(gappy.is_constant());
}

TEST(GlitchProfile, ValidatesWindows) {
    EXPECT_THROW(GlitchProfile({{0.5, 0.4, 0.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(GlitchProfile({{0.0, 0.6, 0.0, 1.0}, {0.5, 1.0, 0.0, 1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(GlitchProfile({{-0.1, 0.5, 0.0, 1.0}}), std::invalid_argument);
}

TEST(GlitchProfile, FromCalibrationSamplesTheCurves) {
    const VddCalibration calibration = VddCalibration::paper_reference();
    circuits::GlitchSpec spec;
    spec.depth_vdd = 0.8;
    spec.onset = 0.25;
    spec.width = 0.25;
    spec.edge = 0.0;
    const GlitchProfile profile =
        GlitchProfile::from_calibration(calibration, spec, 8);
    ASSERT_EQ(profile.windows().size(), 8u);
    // Dip windows carry the paper's 0.8 V operating point...
    EXPECT_NEAR(profile.windows()[2].threshold_delta, -0.1791, 1e-4);
    EXPECT_NEAR(profile.windows()[2].driver_gain, 0.68, 1e-6);
    // ...and nominal windows are identity.
    EXPECT_NEAR(profile.windows()[0].threshold_delta, 0.0, 1e-12);
    EXPECT_NEAR(profile.windows()[6].driver_gain, 1.0, 1e-12);
}

TEST(GlitchCompiler, MapsWindowsToStepsAndMergesEqualNeighbours) {
    const VddCalibration calibration = VddCalibration::paper_reference();
    circuits::GlitchSpec spec;
    spec.depth_vdd = 0.8;
    spec.onset = 0.25;
    spec.width = 0.25;
    spec.edge = 0.0;
    const GlitchProfile profile =
        GlitchProfile::from_calibration(calibration, spec, 16);

    const GlitchCompiler compiler(tiny_config());
    const auto segments = compiler.segments(profile);
    // Four dip windows merge into ONE segment; identity windows vanish.
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].begin_step, 50u);   // 0.25 * 200
    EXPECT_EQ(segments[0].end_step, 100u);    // 0.50 * 200
    EXPECT_NEAR(segments[0].threshold_delta, -0.1791, 1e-4);
    EXPECT_NEAR(segments[0].driver_gain, 0.68, 1e-6);

    const snn::OverlaySchedule schedule = compiler.compile(profile);
    ASSERT_EQ(schedule.size(), 1u);
    EXPECT_EQ(schedule[0].begin_step, 50u);
    EXPECT_EQ(schedule[0].end_step, 100u);
    EXPECT_TRUE(schedule[0].overlay.has_driver_gain());
    // Threshold ops on both layers, every neuron (fraction 1).
    EXPECT_EQ(schedule[0].overlay.neuron_ops().size(),
              2 * tiny_config().n_neurons);
}

TEST(GlitchCompiler, ConstantProfileCompilesToOneFullRangeSegment) {
    const GlitchProfile profile = GlitchProfile::constant(-0.1, 0.9);
    const GlitchCompiler compiler(tiny_config());
    const auto schedule = compiler.compile(profile);
    ASSERT_EQ(schedule.size(), 1u);
    EXPECT_EQ(schedule[0].begin_step, 0u);
    EXPECT_EQ(schedule[0].end_step, tiny_config().steps_per_sample);
}

TEST(GlitchCompiler, IdentityProfileCompilesToNothing) {
    const GlitchProfile identity = GlitchProfile::constant(0.0, 1.0);
    const GlitchCompiler compiler(tiny_config());
    EXPECT_TRUE(compiler.compile(identity).empty());
    // Sub-step *identity* windows still vanish.
    const GlitchProfile thin_identity({{0.5, 0.501, 0.0, 1.0}});
    EXPECT_TRUE(compiler.compile(thin_identity).empty());
}

TEST(GlitchCompiler, SubStepFaultWindowClampsToOneStepSegment) {
    // Regression: a narrow-but-deep glitch used to round to begin == end
    // and silently compile to NO fault at all. It must land as a one-step
    // segment instead.
    const GlitchCompiler compiler(tiny_config());
    const GlitchProfile thin({{0.5, 0.501, -0.2, 0.7}});
    const auto segments = compiler.segments(thin);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].begin_step, 100u);
    EXPECT_EQ(segments[0].end_step, 101u);
    EXPECT_DOUBLE_EQ(segments[0].threshold_delta, -0.2);

    // Even at the very end of the sample the clamp stays inside it.
    const GlitchProfile tail({{0.9999, 1.0, -0.2, 0.7}});
    const auto tail_segments = compiler.segments(tail);
    ASSERT_EQ(tail_segments.size(), 1u);
    EXPECT_EQ(tail_segments[0].begin_step, tiny_config().steps_per_sample - 1);
    EXPECT_EQ(tail_segments[0].end_step, tiny_config().steps_per_sample);
}

TEST(GlitchCompiler, ThinWindowAfterSegmentYieldsInsteadOfOverlapping) {
    const GlitchCompiler compiler(tiny_config());
    // A thin window right after a normal one: the clamp must not create
    // an overlapping segment, and the next normal window must still start
    // past the clamped step.
    const GlitchProfile profile({{0.25, 0.5, -0.1, 0.9},
                                 {0.5, 0.5005, -0.2, 0.7},
                                 {0.5005, 0.75, -0.1, 0.9}});
    const auto segments = compiler.segments(profile);
    ASSERT_EQ(segments.size(), 3u);
    for (std::size_t s = 1; s < segments.size(); ++s)
        EXPECT_GE(segments[s].begin_step, segments[s - 1].end_step);
    EXPECT_EQ(segments[1].begin_step, 100u);
    EXPECT_EQ(segments[1].end_step, 101u);
    EXPECT_EQ(segments[2].begin_step, 101u);
}

TEST(GlitchCompiler, EndStepNeverExceedsStepsPerSample) {
    // Characterizer float error can put the last window's end marginally
    // above 1.0; the compiled segment must still retract inside the
    // sample.
    const GlitchCompiler compiler(tiny_config());
    const GlitchProfile profile({{0.75, 1.0 + 9e-13, -0.2, 0.7}});
    const auto segments = compiler.segments(profile);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_LE(segments[0].end_step, tiny_config().steps_per_sample);
}

TEST(GlitchCompiler, CompiledSchedulesAlwaysSatisfySetScheduleInvariants) {
    // Property test: any valid GlitchSpec grid, realised through the
    // calibration curves at several window resolutions, compiles to a
    // schedule set_schedule accepts — sorted, non-overlapping, non-empty
    // segments inside the sample.
    const VddCalibration calibration = VddCalibration::paper_reference();
    const auto model = snn::NetworkModel::random(tiny_config(), 1);
    snn::NetworkRuntime runtime(model);
    const GlitchCompiler compiler(tiny_config());
    std::size_t compiled = 0;
    for (const auto shape : {circuits::GlitchShape::kRect,
                             circuits::GlitchShape::kTriangle,
                             circuits::GlitchShape::kExpRecovery}) {
        for (const double depth : {0.7, 0.8, 0.95}) {
            for (const double onset : {0.0, 0.37, 0.75, 0.999}) {
                for (const double width : {0.0005, 0.01, 0.2, 1.0}) {
                    if (onset + width > 1.0) continue;
                    circuits::GlitchSpec spec;
                    spec.shape = shape;
                    spec.depth_vdd = depth;
                    spec.onset = onset;
                    spec.width = width;
                    spec.edge = std::min(0.02, width / 4.0);
                    for (const std::size_t windows : {1u, 7u, 16u, 301u}) {
                        const GlitchProfile profile = GlitchProfile::from_calibration(
                            calibration, spec, windows);
                        const auto schedule = compiler.compile(profile);
                        for (std::size_t s = 0; s < schedule.size(); ++s) {
                            EXPECT_LT(schedule[s].begin_step, schedule[s].end_step);
                            EXPECT_LE(schedule[s].end_step,
                                      tiny_config().steps_per_sample);
                            if (s > 0)
                                EXPECT_GE(schedule[s].begin_step,
                                          schedule[s - 1].end_step);
                        }
                        EXPECT_NO_THROW(runtime.set_schedule(schedule));
                        ++compiled;
                    }
                }
            }
        }
    }
    EXPECT_GT(compiled, 100u);  // the grid really swept
}

TEST(GlitchFootprint, StratifiedResolveIsSeededAndSpread) {
    const auto footprint = GlitchFootprint::stratified(0.25, 7);
    const auto a = footprint.resolve(32);
    const auto b = footprint.resolve(32);
    EXPECT_EQ(a, b);  // deterministic
    ASSERT_EQ(a.size(), 8u);
    // One pick per contiguous stratum of 4.
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_GE(a[s], 4 * s);
        EXPECT_LT(a[s], 4 * (s + 1));
    }
    // A different seed picks a different sample (with overwhelming odds).
    EXPECT_NE(GlitchFootprint::stratified(0.25, 8).resolve(32), a);

    EXPECT_THROW(GlitchFootprint::stratified(0.0, 1).resolve(32),
                 std::invalid_argument);
    EXPECT_THROW(GlitchFootprint::subset({40}).resolve(32), std::invalid_argument);
}

TEST(GlitchFootprint, DirectlyPopulatedSubsetsAreCanonicalised) {
    // The public field may be filled without the subset() factory; both
    // resolve() and fingerprint() must be order- and duplicate-insensitive
    // (the campaign cache key rides on the fingerprint).
    GlitchFootprint scrambled;
    scrambled.kind = GlitchFootprint::Kind::kNeurons;
    scrambled.neurons = {9, 5, 1, 5};
    EXPECT_EQ(scrambled.resolve(32), (std::vector<std::size_t>{1, 5, 9}));
    EXPECT_EQ(scrambled.fingerprint(),
              GlitchFootprint::subset({1, 5, 9}).fingerprint());
    // Out-of-range indices are caught even when unsorted.
    GlitchFootprint bad = scrambled;
    bad.neurons = {40, 3};
    EXPECT_THROW(bad.resolve(32), std::invalid_argument);
}

TEST(GlitchFootprint, CompilesToPerNeuronOpsOnTheSubset) {
    const GlitchCompiler compiler(tiny_config());
    const GlitchProfile profile({{0.25, 0.5, -0.18, 0.68}});
    const auto footprint = GlitchFootprint::subset({1, 4, 6});
    const auto schedule = compiler.compile(profile, footprint);
    ASSERT_EQ(schedule.size(), 1u);
    const snn::FaultOverlay& overlay = schedule[0].overlay;
    // No network-wide gain: the driver corruption is per-neuron.
    EXPECT_FALSE(overlay.has_driver_gain());
    // 3 neurons x (2 threshold layers + 1 driver op).
    EXPECT_EQ(overlay.neuron_ops().size(), 9u);
    std::size_t driver_ops = 0;
    for (const snn::NeuronOp& op : overlay.neuron_ops()) {
        EXPECT_TRUE(op.neuron == 1 || op.neuron == 4 || op.neuron == 6);
        if (op.field == snn::NeuronOp::Field::kDriverGain) {
            ++driver_ops;
            EXPECT_EQ(op.layer, snn::OverlayLayer::kExcitatory);
            EXPECT_FLOAT_EQ(op.value, 0.68f);
        }
    }
    EXPECT_EQ(driver_ops, 3u);
}

TEST(GlitchFootprint, WholeLayerFootprintIsBitIdenticalToUniformCompile) {
    const GlitchCompiler compiler(tiny_config());
    const GlitchProfile profile({{0.25, 0.5, -0.18, 0.68}});
    const auto uniform = compiler.compile(profile);
    const auto footprinted =
        compiler.compile(profile, GlitchFootprint::whole_layer());
    ASSERT_EQ(uniform.size(), footprinted.size());
    for (std::size_t s = 0; s < uniform.size(); ++s) {
        EXPECT_EQ(uniform[s].begin_step, footprinted[s].begin_step);
        EXPECT_EQ(uniform[s].end_step, footprinted[s].end_step);
        EXPECT_EQ(uniform[s].overlay.neuron_ops().size(),
                  footprinted[s].overlay.neuron_ops().size());
        EXPECT_EQ(uniform[s].overlay.has_driver_gain(),
                  footprinted[s].overlay.has_driver_gain());
    }
}

TEST(GlitchCompiler, DistinctValuesStayDistinctSegments) {
    const GlitchProfile profile(
        {{0.0, 0.25, -0.1, 0.9}, {0.25, 0.5, -0.2, 0.8}, {0.5, 1.0, 0.0, 1.0}});
    const GlitchCompiler compiler(tiny_config());
    const auto segments = compiler.segments(profile);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].end_step, segments[1].begin_step);
    EXPECT_DOUBLE_EQ(segments[0].driver_gain, 0.9);
    EXPECT_DOUBLE_EQ(segments[1].driver_gain, 0.8);
}

TEST(GlitchProfile, FingerprintDistinguishesProfiles) {
    EXPECT_NE(GlitchProfile::constant(-0.1, 0.9).fingerprint(),
              GlitchProfile::constant(-0.1, 0.8).fingerprint());
    EXPECT_EQ(GlitchProfile::constant(-0.1, 0.9).fingerprint(),
              GlitchProfile::constant(-0.1, 0.9).fingerprint());
}

TEST(GlitchProfile, ConstantFromCalibrationUsesTheCurves) {
    const VddCalibration calibration = VddCalibration::paper_reference();
    const GlitchProfile profile = GlitchProfile::constant_from(calibration, 0.8);
    ASSERT_TRUE(profile.is_constant());
    EXPECT_NEAR(profile.windows()[0].threshold_delta, -0.1791, 1e-4);
    EXPECT_NEAR(profile.windows()[0].driver_gain, 0.68, 1e-6);
}

}  // namespace
}  // namespace snnfi::attack
