// GlitchProfile/GlitchCompiler: constant detection and the static
// FaultSpec form, calibration-sourced profiles, window->step mapping,
// segment merging, and identity elision.
#include "attack/glitch.hpp"

#include <gtest/gtest.h>

namespace snnfi::attack {
namespace {

snn::DiehlCookConfig tiny_config() {
    snn::DiehlCookConfig cfg;
    cfg.n_neurons = 8;
    cfg.steps_per_sample = 200;
    return cfg;
}

TEST(GlitchProfile, ConstantProfileHasStaticFaultSpecForm) {
    const GlitchProfile profile = GlitchProfile::constant(-0.18, 0.68);
    EXPECT_TRUE(profile.is_constant());
    const FaultSpec spec = profile.to_fault_spec();
    EXPECT_EQ(spec.layer, TargetLayer::kBoth);
    EXPECT_DOUBLE_EQ(spec.fraction, 1.0);
    EXPECT_DOUBLE_EQ(spec.threshold_delta, -0.18);
    EXPECT_DOUBLE_EQ(spec.driver_gain, 0.68);

    // Pure driver corruption maps to the attack-1 shape (no threshold
    // target layer).
    const FaultSpec gain_only = GlitchProfile::constant(0.0, 0.8).to_fault_spec();
    EXPECT_EQ(gain_only.layer, TargetLayer::kNone);
    EXPECT_DOUBLE_EQ(gain_only.driver_gain, 0.8);
}

TEST(GlitchProfile, NonConstantProfilesRejectFaultSpecForm) {
    const GlitchProfile profile({{0.0, 0.5, -0.1, 0.9}, {0.5, 1.0, 0.0, 1.0}});
    EXPECT_FALSE(profile.is_constant());
    EXPECT_THROW(profile.to_fault_spec(), std::logic_error);
    // A gap also breaks constancy even with equal values.
    const GlitchProfile gappy({{0.0, 0.4, -0.1, 0.9}, {0.6, 1.0, -0.1, 0.9}});
    EXPECT_FALSE(gappy.is_constant());
}

TEST(GlitchProfile, ValidatesWindows) {
    EXPECT_THROW(GlitchProfile({{0.5, 0.4, 0.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(GlitchProfile({{0.0, 0.6, 0.0, 1.0}, {0.5, 1.0, 0.0, 1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(GlitchProfile({{-0.1, 0.5, 0.0, 1.0}}), std::invalid_argument);
}

TEST(GlitchProfile, FromCalibrationSamplesTheCurves) {
    const VddCalibration calibration = VddCalibration::paper_reference();
    circuits::GlitchSpec spec;
    spec.depth_vdd = 0.8;
    spec.onset = 0.25;
    spec.width = 0.25;
    spec.edge = 0.0;
    const GlitchProfile profile =
        GlitchProfile::from_calibration(calibration, spec, 8);
    ASSERT_EQ(profile.windows().size(), 8u);
    // Dip windows carry the paper's 0.8 V operating point...
    EXPECT_NEAR(profile.windows()[2].threshold_delta, -0.1791, 1e-4);
    EXPECT_NEAR(profile.windows()[2].driver_gain, 0.68, 1e-6);
    // ...and nominal windows are identity.
    EXPECT_NEAR(profile.windows()[0].threshold_delta, 0.0, 1e-12);
    EXPECT_NEAR(profile.windows()[6].driver_gain, 1.0, 1e-12);
}

TEST(GlitchCompiler, MapsWindowsToStepsAndMergesEqualNeighbours) {
    const VddCalibration calibration = VddCalibration::paper_reference();
    circuits::GlitchSpec spec;
    spec.depth_vdd = 0.8;
    spec.onset = 0.25;
    spec.width = 0.25;
    spec.edge = 0.0;
    const GlitchProfile profile =
        GlitchProfile::from_calibration(calibration, spec, 16);

    const GlitchCompiler compiler(tiny_config());
    const auto segments = compiler.segments(profile);
    // Four dip windows merge into ONE segment; identity windows vanish.
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].begin_step, 50u);   // 0.25 * 200
    EXPECT_EQ(segments[0].end_step, 100u);    // 0.50 * 200
    EXPECT_NEAR(segments[0].threshold_delta, -0.1791, 1e-4);
    EXPECT_NEAR(segments[0].driver_gain, 0.68, 1e-6);

    const snn::OverlaySchedule schedule = compiler.compile(profile);
    ASSERT_EQ(schedule.size(), 1u);
    EXPECT_EQ(schedule[0].begin_step, 50u);
    EXPECT_EQ(schedule[0].end_step, 100u);
    EXPECT_TRUE(schedule[0].overlay.has_driver_gain());
    // Threshold ops on both layers, every neuron (fraction 1).
    EXPECT_EQ(schedule[0].overlay.neuron_ops().size(),
              2 * tiny_config().n_neurons);
}

TEST(GlitchCompiler, ConstantProfileCompilesToOneFullRangeSegment) {
    const GlitchProfile profile = GlitchProfile::constant(-0.1, 0.9);
    const GlitchCompiler compiler(tiny_config());
    const auto schedule = compiler.compile(profile);
    ASSERT_EQ(schedule.size(), 1u);
    EXPECT_EQ(schedule[0].begin_step, 0u);
    EXPECT_EQ(schedule[0].end_step, tiny_config().steps_per_sample);
}

TEST(GlitchCompiler, IdentityProfileCompilesToNothing) {
    const GlitchProfile identity = GlitchProfile::constant(0.0, 1.0);
    const GlitchCompiler compiler(tiny_config());
    EXPECT_TRUE(compiler.compile(identity).empty());
    // Sub-step windows are dropped rather than rounded up.
    const GlitchProfile thin({{0.5, 0.501, -0.2, 0.7}});
    EXPECT_TRUE(compiler.compile(thin).empty());
}

TEST(GlitchCompiler, DistinctValuesStayDistinctSegments) {
    const GlitchProfile profile(
        {{0.0, 0.25, -0.1, 0.9}, {0.25, 0.5, -0.2, 0.8}, {0.5, 1.0, 0.0, 1.0}});
    const GlitchCompiler compiler(tiny_config());
    const auto segments = compiler.segments(profile);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].end_step, segments[1].begin_step);
    EXPECT_DOUBLE_EQ(segments[0].driver_gain, 0.9);
    EXPECT_DOUBLE_EQ(segments[1].driver_gain, 0.8);
}

TEST(GlitchProfile, FingerprintDistinguishesProfiles) {
    EXPECT_NE(GlitchProfile::constant(-0.1, 0.9).fingerprint(),
              GlitchProfile::constant(-0.1, 0.8).fingerprint());
    EXPECT_EQ(GlitchProfile::constant(-0.1, 0.9).fingerprint(),
              GlitchProfile::constant(-0.1, 0.9).fingerprint());
}

TEST(GlitchProfile, ConstantFromCalibrationUsesTheCurves) {
    const VddCalibration calibration = VddCalibration::paper_reference();
    const GlitchProfile profile = GlitchProfile::constant_from(calibration, 0.8);
    ASSERT_TRUE(profile.is_constant());
    EXPECT_NEAR(profile.windows()[0].threshold_delta, -0.1791, 1e-4);
    EXPECT_NEAR(profile.windows()[0].driver_gain, 0.68, 1e-6);
}

}  // namespace
}  // namespace snnfi::attack
