#include <gtest/gtest.h>

#include <set>

#include "attack/calibration.hpp"
#include "attack/fault_model.hpp"
#include "attack/scenarios.hpp"
#include "data/synthetic_digits.hpp"
#include "snn/runtime.hpp"

namespace snnfi::attack {
namespace {

TEST(FaultMask, CountMatchesFraction) {
    EXPECT_EQ(fault_mask(100, 0.25, 1, TargetLayer::kExcitatory).size(), 25u);
    EXPECT_EQ(fault_mask(100, 1.0, 1, TargetLayer::kExcitatory).size(), 100u);
    EXPECT_EQ(fault_mask(100, 0.0, 1, TargetLayer::kExcitatory).size(), 0u);
    // Rounds to nearest.
    EXPECT_EQ(fault_mask(10, 0.33, 1, TargetLayer::kExcitatory).size(), 3u);
}

TEST(FaultMask, DeterministicAndLayerDecorrelated) {
    const auto a = fault_mask(50, 0.5, 9, TargetLayer::kExcitatory);
    const auto b = fault_mask(50, 0.5, 9, TargetLayer::kExcitatory);
    EXPECT_EQ(a, b);
    const auto c = fault_mask(50, 0.5, 9, TargetLayer::kInhibitory);
    EXPECT_NE(a, c);  // different layer stream
    const auto d = fault_mask(50, 0.5, 10, TargetLayer::kExcitatory);
    EXPECT_NE(a, d);  // different seed
}

TEST(FaultMask, IndicesValidAndDistinct) {
    const auto mask = fault_mask(40, 0.75, 3, TargetLayer::kBoth);
    std::set<std::size_t> unique(mask.begin(), mask.end());
    EXPECT_EQ(unique.size(), mask.size());
    for (const auto idx : mask) EXPECT_LT(idx, 40u);
    EXPECT_THROW(fault_mask(10, 1.5, 1, TargetLayer::kBoth), std::invalid_argument);
}

TEST(OverlayFor, ThresholdValueSemantics) {
    snn::DiehlCookConfig cfg;
    cfg.n_neurons = 10;
    FaultSpec fault;
    fault.layer = TargetLayer::kInhibitory;
    fault.fraction = 1.0;
    fault.threshold_delta = -0.2;
    snn::NetworkRuntime runtime(snn::NetworkModel::random(cfg, 1),
                                overlay_for(fault, cfg));
    // IL: rest -60, thresh -40 -> value semantics: -40*0.8 = -32 mV.
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_NEAR(runtime.effective_threshold(snn::OverlayLayer::kInhibitory, i),
                    -32.0, 1e-3);
    // EL untouched.
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_NEAR(runtime.effective_threshold(snn::OverlayLayer::kExcitatory, i),
                    -52.0, 1e-3);
}

TEST(OverlayFor, CircuitSemanticsAndFraction) {
    snn::DiehlCookConfig cfg;
    cfg.n_neurons = 10;
    FaultSpec fault;
    fault.layer = TargetLayer::kExcitatory;
    fault.fraction = 0.5;
    fault.threshold_delta = -0.2;
    fault.semantics = ThresholdSemantics::kCircuitDistance;
    snn::NetworkRuntime runtime(snn::NetworkModel::random(cfg, 1),
                                overlay_for(fault, cfg));
    int lowered = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        const double thr =
            runtime.effective_threshold(snn::OverlayLayer::kExcitatory, i);
        if (thr < -52.5) {
            ++lowered;
            EXPECT_NEAR(thr, -65.0 + 13.0 * 0.8, 1e-3);
        }
    }
    EXPECT_EQ(lowered, 5);
}

TEST(OverlayFor, DriverGainAppliedAtNetworkLevel) {
    snn::DiehlCookConfig cfg;
    cfg.n_neurons = 8;
    FaultSpec fault;
    fault.layer = TargetLayer::kNone;
    fault.driver_gain = 0.8;
    snn::NetworkRuntime runtime(snn::NetworkModel::random(cfg, 1),
                                overlay_for(fault, cfg));
    EXPECT_FLOAT_EQ(runtime.driver_gain(), 0.8f);
    // And cleared by the next overlay application.
    runtime.set_overlay(overlay_for(FaultSpec{}, cfg));
    EXPECT_FLOAT_EQ(runtime.driver_gain(), 1.0f);
}

TEST(Calibration, PaperReferenceEndpoints) {
    const auto calibration = VddCalibration::paper_reference();
    EXPECT_NEAR(calibration.threshold_delta(0.8), -0.1791, 1e-4);
    EXPECT_NEAR(calibration.threshold_delta(1.2), 0.1676, 1e-4);
    EXPECT_NEAR(calibration.threshold_delta(1.0), 0.0, 1e-9);
    EXPECT_NEAR(calibration.driver_gain(0.8), 0.68, 1e-6);
    EXPECT_NEAR(calibration.driver_gain(1.2), 1.32, 1e-6);
    EXPECT_NEAR(calibration.driver_gain(1.0), 1.0, 1e-9);
}

TEST(Calibration, InterpolatesBetweenPoints) {
    const auto calibration = VddCalibration::paper_reference();
    const double mid = calibration.threshold_delta(0.85);
    EXPECT_GT(mid, calibration.threshold_delta(0.8));
    EXPECT_LT(mid, calibration.threshold_delta(0.9));
}

TEST(Calibration, FromCircuitsMatchesPaperShape) {
    const circuits::Characterizer characterizer{circuits::CharacterizationConfig{}};
    const auto calibration = VddCalibration::from_circuits(
        characterizer, {0.8, 1.0, 1.2}, circuits::NeuronKind::kAxonHillock);
    EXPECT_NEAR(calibration.threshold_delta(0.8), -0.18, 0.03);
    EXPECT_NEAR(calibration.threshold_delta(1.2), 0.17, 0.03);
    EXPECT_NEAR(calibration.driver_gain(0.8), 0.70, 0.05);
    EXPECT_NEAR(calibration.driver_gain(1.2), 1.30, 0.05);
}

// --------------------------------------------------------------- scenarios
attack::AttackSuite tiny_suite() {
    // Smallest configuration where the paper's attack ranking emerges
    // (below ~50 neurons / 300 samples the inhibition dynamics are too
    // sparse to matter).
    AttackRunConfig config;
    config.network.n_neurons = 50;
    config.train_samples = 300;
    config.eval_window = 100;
    return AttackSuite(data::make_synthetic_dataset(300, 42), config);
}

TEST(AttackSuite, BaselineCachedAndAboveChance) {
    auto suite = tiny_suite();
    const double first = suite.baseline_accuracy();
    EXPECT_GT(suite.baseline_retro_accuracy(), 0.2);
    EXPECT_DOUBLE_EQ(suite.baseline_accuracy(), first);  // cached
}

TEST(AttackSuite, InhibitoryAttackWorseThanExcitatory) {
    // The paper's central ranking: Attack 3 devastates, Attack 2 is mild.
    auto suite = tiny_suite();
    FaultSpec exc;
    exc.layer = TargetLayer::kExcitatory;
    exc.threshold_delta = -0.2;
    FaultSpec inh = exc;
    inh.layer = TargetLayer::kInhibitory;
    const auto results = suite.run_many({exc, inh});
    EXPECT_GT(results[0].accuracy, results[1].accuracy);
    EXPECT_LT(results[1].degradation_pct, -40.0);  // IL collapse
}

TEST(AttackSuite, Attack1ThetaIsMild) {
    auto suite = tiny_suite();
    const auto outcomes = suite.attack1_theta({-0.2, 0.2});
    for (const auto& o : outcomes) {
        EXPECT_GT(o.accuracy, 0.5 * suite.baseline_accuracy())
            << "gain=" << o.fault.driver_gain;
    }
}

TEST(AttackSuite, GridShapesAndMetadata) {
    auto suite = tiny_suite();
    const auto grid = suite.attack_layer_grid(TargetLayer::kExcitatory,
                                              {-0.2, 0.2}, {0.5, 1.0});
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].fault.layer, TargetLayer::kExcitatory);
    EXPECT_DOUBLE_EQ(grid[0].fault.threshold_delta, -0.2);
    EXPECT_DOUBLE_EQ(grid[1].fault.fraction, 1.0);
}

TEST(AttackSuite, Attack5UsesCalibration) {
    auto suite = tiny_suite();
    const auto calibration = VddCalibration::paper_reference();
    const auto outcomes = suite.attack5_vdd(calibration, {0.8, 1.0});
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_DOUBLE_EQ(outcomes[0].vdd, 0.8);
    EXPECT_NEAR(outcomes[0].fault.driver_gain, 0.68, 1e-6);
    // Nominal VDD is a no-op fault: accuracy equals the baseline.
    EXPECT_NEAR(outcomes[1].accuracy, suite.baseline_accuracy(), 1e-9);
    // 0.8 V attack collapses relative to nominal.
    EXPECT_LT(outcomes[0].accuracy, outcomes[1].accuracy);
}

TEST(AttackSuite, RunManyMatchesRunSingle) {
    auto suite = tiny_suite();
    FaultSpec fault;
    fault.layer = TargetLayer::kInhibitory;
    fault.threshold_delta = -0.2;
    const auto single = suite.run(fault);
    const auto many = suite.run_many({fault});
    ASSERT_EQ(many.size(), 1u);
    EXPECT_DOUBLE_EQ(single.accuracy, many[0].accuracy);
}

TEST(AttackSuite, TruncatesDatasetToTrainSamples) {
    AttackRunConfig config;
    config.network.n_neurons = 20;
    config.network.steps_per_sample = 100;
    config.train_samples = 50;
    AttackSuite suite(data::make_synthetic_dataset(200, 1), config);
    EXPECT_EQ(suite.dataset().size(), 50u);
}

TEST(AttackSuite, ScheduledTrainingNarrowWindowStillGlitchesOneSample) {
    // Regression: a non-empty fractional window that rounds to zero
    // samples must clamp to one glitched sample, not silently train
    // glitch-free (the sample-axis twin of the compiler's one-step clamp).
    AttackRunConfig config;
    config.network.n_neurons = 20;
    config.network.steps_per_sample = 100;
    config.train_samples = 60;
    config.eval_window = 30;
    AttackSuite suite(data::make_synthetic_dataset(60, 42), config);

    std::vector<std::size_t> all(config.network.n_neurons);
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    snn::FaultOverlay saturate;
    saturate.force_state(snn::OverlayLayer::kExcitatory, all,
                         snn::NeuronFault::kSaturated);

    ScheduledTrainingSpec narrow;
    narrow.schedule = {{0, config.network.steps_per_sample, saturate}};
    narrow.sample_begin = 0.5;
    narrow.sample_end = 0.5001;  // rounds to [30, 30) without the clamp
    const AttackOutcome glitched = suite.run_scheduled(narrow);

    ScheduledTrainingSpec clean = narrow;
    clean.schedule = {};  // same window, no fault
    const AttackOutcome reference = suite.run_scheduled(clean);

    // The one saturated sample fires every EL neuron every step — an
    // unmistakable spike-count signature.
    EXPECT_GT(glitched.exc_spikes_per_sample, reference.exc_spikes_per_sample);

    EXPECT_THROW(suite.run_scheduled({{}, 0.5, 0.4}), std::invalid_argument);
}

TEST(ToString, LayerNames) {
    EXPECT_STREQ(to_string(TargetLayer::kExcitatory), "excitatory");
    EXPECT_STREQ(to_string(TargetLayer::kInhibitory), "inhibitory");
    EXPECT_STREQ(to_string(TargetLayer::kBoth), "both");
    EXPECT_STREQ(to_string(TargetLayer::kNone), "none");
}

}  // namespace
}  // namespace snnfi::attack
