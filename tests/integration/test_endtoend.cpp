// End-to-end integration: circuit characterisation feeds the calibration,
// the calibration drives the black-box attack, the attack collapses the
// classifier, and the defenses recover it — the paper's full story on a
// scaled-down workload.
#include <gtest/gtest.h>

#include "attack/calibration.hpp"
#include "attack/scenarios.hpp"
#include "core/experiments.hpp"
#include "data/synthetic_digits.hpp"
#include "defense/defenses.hpp"

namespace snnfi {
namespace {

class EndToEnd : public ::testing::Test {
protected:
    static attack::AttackSuite make_suite() {
        attack::AttackRunConfig config;
        config.network.n_neurons = 50;
        config.train_samples = 300;
        config.eval_window = 100;
        return attack::AttackSuite(data::make_synthetic_dataset(300, 42), config);
    }
};

TEST_F(EndToEnd, FullPipelineStoryHolds) {
    // 1. Circuits -> calibration.
    const circuits::Characterizer characterizer{circuits::CharacterizationConfig{}};
    const auto calibration = attack::VddCalibration::from_circuits(
        characterizer, {0.8, 1.0, 1.2}, circuits::NeuronKind::kAxonHillock);
    EXPECT_LT(calibration.threshold_delta(0.8), -0.1);
    EXPECT_LT(calibration.driver_gain(0.8), 0.8);

    // 2. Baseline learns.
    auto suite = make_suite();
    const double baseline = suite.baseline_accuracy();
    EXPECT_GT(suite.baseline_retro_accuracy(), 0.3);

    // 3. Black-box VDD attack collapses accuracy.
    const auto attacked = suite.attack5_vdd(calibration, {0.8});
    EXPECT_LT(attacked[0].accuracy, 0.6 * baseline);

    // 4. The bandgap defense recovers it.
    defense::DefenseSuite defenses(suite, characterizer);
    const auto defended = defenses.bandgap_vthr(circuits::BandgapModel{}, {0.8});
    EXPECT_GT(defended[0].accuracy, attacked[0].accuracy);
    EXPECT_GT(defended[0].accuracy, 0.8 * baseline);
}

TEST_F(EndToEnd, AttackRankingMatchesPaper) {
    // Paper ordering at -20%/100%: Attack 4 <= Attack 3 << Attack 2 <= base.
    auto suite = make_suite();
    attack::FaultSpec exc;
    exc.layer = attack::TargetLayer::kExcitatory;
    exc.threshold_delta = -0.2;
    attack::FaultSpec inh = exc;
    inh.layer = attack::TargetLayer::kInhibitory;
    attack::FaultSpec both = exc;
    both.layer = attack::TargetLayer::kBoth;
    const auto results = suite.run_many({exc, inh, both});
    EXPECT_GT(results[0].accuracy, results[1].accuracy);          // EL > IL
    EXPECT_LE(results[2].accuracy, results[1].accuracy + 0.05);   // both worst
}

TEST_F(EndToEnd, ThetaAttackMildAsInFig7b) {
    auto suite = make_suite();
    const auto outcomes = suite.attack1_theta({-0.2, 0.2});
    const double baseline = suite.baseline_accuracy();
    for (const auto& o : outcomes)
        EXPECT_GT(o.accuracy, 0.55 * baseline) << "gain " << o.fault.driver_gain;
}

TEST_F(EndToEnd, QuickExperimentTablesAreWellFormed) {
    core::ExperimentOptions options;
    options.quick = true;
    for (const auto* id : {"baseline", "fig7b", "fig8c"}) {
        const auto table = core::find_experiment(id).run(options);
        EXPECT_GT(table.num_rows(), 0u) << id;
        EXPECT_FALSE(table.to_csv().empty()) << id;
    }
}

TEST_F(EndToEnd, InferenceOnlyMilderThanTrainingTime) {
    // Beyond-paper ablation: the same fault injected only at inference
    // (clean training) is less damaging than corrupting training itself.
    attack::FaultSpec fault;
    fault.layer = attack::TargetLayer::kInhibitory;
    fault.threshold_delta = -0.2;

    attack::AttackRunConfig config;
    config.network.n_neurons = 40;
    config.network.steps_per_sample = 150;
    config.train_samples = 150;
    config.eval_window = 50;
    attack::AttackSuite training_suite(data::make_synthetic_dataset(150, 42), config);
    const auto training_time = training_suite.run(fault);

    config.phase = attack::AttackPhase::kInferenceOnly;
    attack::AttackSuite inference_suite(data::make_synthetic_dataset(150, 42), config);
    const auto inference_only = inference_suite.run(fault);

    EXPECT_GE(inference_only.accuracy, 0.0);
    EXPECT_LE(inference_only.accuracy, 1.0);
    EXPECT_GE(inference_only.accuracy, training_time.accuracy - 0.05);
}

}  // namespace
}  // namespace snnfi
