// Registry invariants and Session engine behavior: declarative sweeps,
// artifact-cache reuse (one shared baseline), and parallel determinism.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/scenario.hpp"

namespace snnfi::core {
namespace {

// Tiny workload so every-scenario smoke runs stay fast; quick mode also
// coarsens the sweep grids.
RunOptions tiny_options(std::size_t workers = 1) {
    RunOptions options;
    options.quick = true;
    options.train_samples = 80;
    options.n_neurons = 24;
    options.eval_window = 40;
    options.max_workers = workers;
    return options;
}

TEST(ScenarioRegistry, IdsUniqueAndSpecsWellFormed) {
    auto& registry = ScenarioRegistry::instance();
    EXPECT_GE(registry.all().size(), 20u);
    std::set<std::string> ids;
    for (const auto& spec : registry.all()) {
        EXPECT_FALSE(spec.id.empty());
        EXPECT_FALSE(spec.title.empty());
        EXPECT_FALSE(spec.tags.empty()) << spec.id;
        EXPECT_TRUE(spec.declarative() || spec.custom_run != nullptr) << spec.id;
        EXPECT_TRUE(ids.insert(spec.id).second) << "duplicate id " << spec.id;
    }
}

TEST(ScenarioRegistry, FindAndSelect) {
    auto& registry = ScenarioRegistry::instance();
    EXPECT_EQ(registry.find("fig9a").id, "fig9a");
    EXPECT_THROW(registry.find("fig99"), std::invalid_argument);
    EXPECT_THROW(registry.select("no_such_tag"), std::invalid_argument);

    const auto attacks = registry.by_tag("attack");
    EXPECT_GE(attacks.size(), 6u);  // baseline + attacks 1-5
    const auto everything = registry.select("all");
    EXPECT_EQ(everything.size(), registry.all().size());
    // Mixed id+tag selector, deduplicated.
    const auto mixed = registry.select("attack,fig9a,ablation");
    std::set<const ScenarioSpec*> unique(mixed.begin(), mixed.end());
    EXPECT_EQ(unique.size(), mixed.size());
    EXPECT_GT(mixed.size(), attacks.size());
}

TEST(ScenarioRegistry, RejectsMalformedSpecs) {
    auto& registry = ScenarioRegistry::instance();
    ScenarioSpec duplicate;
    duplicate.id = "fig3";
    duplicate.custom_run = [](Session&, const RunOptions&) {
        return util::ResultTable("x", {"c"});
    };
    EXPECT_THROW(registry.add(duplicate), std::invalid_argument);

    ScenarioSpec empty_body;
    empty_body.id = "not_runnable";
    EXPECT_THROW(registry.add(empty_body), std::invalid_argument);
}

TEST(Session, EveryRegisteredScenarioRunsQuick) {
    Session session(tiny_options());
    for (const auto& spec : ScenarioRegistry::instance().all()) {
        const RunResult result = session.run(spec);
        EXPECT_EQ(result.id, spec.id);
        EXPECT_GT(result.table.num_rows(), 0u) << spec.id;
        EXPECT_GT(result.table.num_columns(), 0u) << spec.id;
        EXPECT_FALSE(result.table.to_csv().empty()) << spec.id;
        const std::string json = result.to_json();
        EXPECT_EQ(json.front(), '{') << spec.id;
        EXPECT_NE(json.find("\"table\":{"), std::string::npos) << spec.id;
    }
}

TEST(Session, SharedBaselineTrainedExactlyOnceAcrossAttackTag) {
    Session session(tiny_options());
    const auto results = session.run_selector("baseline,fig7b,fig8c");
    ASSERT_EQ(results.size(), 3u);
    // First scenario misses (builds dataset + suite, trains the baseline);
    // the others are pure cache hits — nothing is retrained.
    EXPECT_GE(results[0].cache_misses, 1u);
    for (std::size_t r = 1; r < results.size(); ++r) {
        EXPECT_EQ(results[r].cache_misses, 0u) << results[r].id;
        EXPECT_GE(results[r].cache_hits, 1u) << results[r].id;
    }
    EXPECT_GE(session.cache_hits(), 2u);
}

TEST(Session, RunManyDeterministicAcrossWorkerCounts) {
    const auto render = [](const std::vector<RunResult>& results) {
        std::string text;
        for (const auto& result : results)
            text += result.table.to_json() + "\n" + result.table.to_csv();
        return text;
    };
    Session serial(tiny_options(1));
    Session parallel(tiny_options(4));
    const std::string a = render(serial.run_selector("fig7b,fig8c"));
    const std::string b = render(parallel.run_selector("fig7b,fig8c"));
    EXPECT_EQ(a, b);  // byte-identical output, any worker count
}

TEST(Session, DeclarativeSweepShapesMatchSpec) {
    Session session(tiny_options());
    const auto& spec = ScenarioRegistry::instance().find("fig8a");
    ASSERT_EQ(spec.axes.size(), 2u);
    const RunResult result = session.run(spec);
    // quick grids: 2 deltas x 2 fractions.
    EXPECT_EQ(result.table.num_rows(), 4u);
    EXPECT_EQ(result.table.columns()[0], "threshold_change_pct");
    EXPECT_EQ(result.table.columns()[1], "fraction_pct");
    EXPECT_EQ(result.table.columns().back(), "degradation_pct");

    // VDD sweeps expose the calibration bridge columns.
    const RunResult vdd = session.run("fig9a");
    EXPECT_EQ(vdd.table.columns()[0], "vdd_V");
    EXPECT_EQ(vdd.table.columns()[1], "threshold_change_pct");
    EXPECT_EQ(vdd.table.columns()[2], "driver_gain");
}

TEST(Session, ArtifactAccessorsCountHitsAndMisses) {
    Session session(tiny_options());
    EXPECT_EQ(session.cache_hits(), 0u);
    EXPECT_EQ(session.cache_misses(), 0u);
    const auto first = session.characterizer();
    EXPECT_EQ(session.cache_misses(), 1u);
    const auto second = session.characterizer();
    EXPECT_EQ(session.cache_hits(), 1u);
    EXPECT_EQ(first.get(), second.get());

    const auto suite_a = session.attack_suite();
    const auto suite_b = session.attack_suite();
    EXPECT_EQ(suite_a.get(), suite_b.get());
}

TEST(Session, GenericArtifactSlotSharesTheCache) {
    Session session(tiny_options());
    int builds = 0;
    const auto make = [&]() {
        ++builds;
        return std::make_shared<int>(42);
    };
    const auto first = session.artifact<int>("answer", make);
    const auto second = session.artifact<int>("answer", make);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(*second, 42);
    EXPECT_EQ(session.cache_hits(), 1u);
    EXPECT_EQ(session.cache_misses(), 1u);
}

TEST(Session, CacheCapacityEvictsLeastRecentlyUsed) {
    RunOptions options = tiny_options();
    options.cache_capacity = 2;
    Session session(options);
    const auto build_tag = [&](const std::string& key) {
        return session.artifact<std::string>(
            key, [&] { return std::make_shared<std::string>(key); });
    };
    build_tag("a");
    build_tag("b");
    EXPECT_EQ(session.cache_entries(), 2u);
    EXPECT_EQ(session.cache_evictions(), 0u);

    build_tag("a");        // refresh 'a': now 'b' is the LRU entry
    build_tag("c");        // exceeds the cap -> evicts 'b'
    EXPECT_EQ(session.cache_entries(), 2u);
    EXPECT_EQ(session.cache_evictions(), 1u);

    const std::size_t misses_before = session.cache_misses();
    build_tag("a");  // still cached
    EXPECT_EQ(session.cache_misses(), misses_before);
    build_tag("b");  // was evicted -> rebuilt
    EXPECT_EQ(session.cache_misses(), misses_before + 1);
    EXPECT_EQ(session.cache_evictions(), 2u);  // rebuilding 'b' evicted 'c'
}

TEST(Session, JsonEnvelopeCarriesTwoTierCacheCounters) {
    Session session(tiny_options());
    (void)session.characterizer();
    const std::string json = to_json({}, session);
    // Two-tier cache object: the in-memory counters under "memory", the
    // persistent store's under "store" (disabled here — no store_dir).
    EXPECT_NE(json.find("\"cache\":{\"memory\":{"), std::string::npos);
    EXPECT_NE(json.find("\"evictions\":0"), std::string::npos);
    EXPECT_NE(json.find("\"entries\":1"), std::string::npos);
    EXPECT_NE(json.find("\"store\":{\"enabled\":false"), std::string::npos);
}

TEST(Session, StorePersistsSweepsAcrossSessions) {
    const std::filesystem::path store_dir =
        std::filesystem::path(::testing::TempDir()) / "snnfi_session_store";
    std::filesystem::remove_all(store_dir);
    RunOptions options = tiny_options();
    options.store_dir = store_dir.string();

    const std::vector<double> grid{0.8, 1.0, 1.2};
    std::vector<circuits::VddPoint> first_points;
    {
        Session first(options);
        ASSERT_NE(first.store(), nullptr);
        first_points = *first.threshold_sweep(circuits::NeuronKind::kAxonHillock,
                                              grid);
        EXPECT_EQ(first.store()->hits(), 0u);
        EXPECT_GE(first.store()->misses(), 1u);
        EXPECT_GE(first.store()->entries(), 1u);
    }
    // A cold process (fresh Session, empty in-memory cache) hits the store
    // instead of re-simulating, and reproduces the sweep bit-for-bit.
    Session second(options);
    const auto points =
        second.threshold_sweep(circuits::NeuronKind::kAxonHillock, grid);
    EXPECT_EQ(second.store()->hits(), 1u);
    EXPECT_EQ(second.store()->misses(), 0u);
    ASSERT_EQ(points->size(), first_points.size());
    for (std::size_t i = 0; i < points->size(); ++i) {
        EXPECT_EQ((*points)[i].vdd, first_points[i].vdd);
        EXPECT_EQ((*points)[i].value, first_points[i].value);
        EXPECT_EQ((*points)[i].change_pct, first_points[i].change_pct);
    }
    const std::string json = to_json({}, second);
    EXPECT_NE(json.find("\"store\":{\"enabled\":true,\"hits\":1"),
              std::string::npos);
    std::filesystem::remove_all(store_dir);
}

TEST(Session, StoreAdoptsTrainedBaselineAcrossSessions) {
    const std::filesystem::path store_dir =
        std::filesystem::path(::testing::TempDir()) / "snnfi_baseline_store";
    std::filesystem::remove_all(store_dir);
    RunOptions options = tiny_options();
    options.store_dir = store_dir.string();

    double baseline = 0.0;
    {
        Session first(options);
        baseline = first.attack_suite()->baseline_accuracy();
        EXPECT_GE(first.store()->misses(), 1u);  // baseline trained + saved
    }
    Session second(options);
    const std::size_t misses_before = second.store()->misses();
    // The cold process adopts the persisted model: a store hit, no
    // training, and the exact same baseline accuracy.
    EXPECT_EQ(second.attack_suite()->baseline_accuracy(), baseline);
    EXPECT_GE(second.store()->hits(), 1u);
    EXPECT_EQ(second.store()->misses(), misses_before);

    // A different workload misses: the key covers the training config.
    RunOptions other = options;
    other.train_samples = options.train_samples / 2;
    Session third(other);
    (void)third.attack_suite()->baseline_accuracy();
    EXPECT_EQ(third.store()->hits(), 0u);
    std::filesystem::remove_all(store_dir);
}

}  // namespace
}  // namespace snnfi::core
