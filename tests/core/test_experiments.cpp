#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include <set>

namespace snnfi::core {
namespace {

ExperimentOptions quick_options() {
    ExperimentOptions options;
    options.quick = true;
    return options;
}

TEST(Registry, IdsUniqueAndNonEmpty) {
    const auto& registry = experiment_registry();
    EXPECT_GE(registry.size(), 18u);
    std::set<std::string> ids;
    for (const auto& experiment : registry) {
        EXPECT_FALSE(experiment.id.empty());
        EXPECT_FALSE(experiment.title.empty());
        EXPECT_TRUE(experiment.run != nullptr);
        EXPECT_TRUE(ids.insert(experiment.id).second) << experiment.id;
    }
}

TEST(Registry, FindByIdAndUnknownThrows) {
    EXPECT_EQ(find_experiment("fig6a").id, "fig6a");
    EXPECT_THROW(find_experiment("fig99"), std::invalid_argument);
}

TEST(Registry, QuickOptionsShrinkWorkload) {
    ExperimentOptions options;
    options.quick = true;
    EXPECT_LT(options.samples(), options.train_samples);
    EXPECT_LT(options.neurons(), options.n_neurons);
    options.quick = false;
    EXPECT_EQ(options.samples(), options.train_samples);
}

TEST(Experiments, Fig5bShapeMatchesPaper) {
    const auto table = run_fig5b_driver_amplitude(quick_options());
    ASSERT_EQ(table.num_rows(), 3u);  // quick grid: 0.8, 1.0, 1.2
    // Amplitude strictly increasing with VDD.
    const auto amps = table.numeric_column(1);
    EXPECT_LT(amps[0], amps[1]);
    EXPECT_LT(amps[1], amps[2]);
    // Change percentages bracket the paper's -32/+32.
    EXPECT_NEAR(table.number_at(0, 2), -30.0, 6.0);
    EXPECT_NEAR(table.number_at(2, 2), +30.0, 6.0);
}

TEST(Experiments, Fig6aShapeMatchesPaper) {
    const auto table = run_fig6a_threshold_vs_vdd(quick_options());
    ASSERT_EQ(table.num_rows(), 6u);  // 2 neurons x 3 VDDs
    // First row: AH at 0.8 V, about -18%.
    EXPECT_NEAR(table.number_at(0, 3), -18.0, 4.0);
    // Last row: I&F at 1.2 V, positive change.
    EXPECT_GT(table.number_at(5, 3), 10.0);
}

TEST(Experiments, Fig9bRobustDriverFlat) {
    const auto table = run_fig9b_robust_driver(quick_options());
    for (std::size_t r = 0; r < table.num_rows(); ++r)
        EXPECT_LT(std::abs(table.number_at(r, 2)), 1.0);
}

TEST(Experiments, Fig9cDroopShrinksWithRatio) {
    const auto table = run_fig9c_sizing(quick_options());
    ASSERT_EQ(table.num_rows(), 2u);  // ratios 1 and 32
    EXPECT_GT(table.number_at(1, 2), table.number_at(0, 2));  // less droop
}

TEST(Experiments, Fig10aComparatorFlat) {
    const auto table = run_fig10a_comparator(quick_options());
    for (std::size_t r = 0; r < table.num_rows(); ++r)
        EXPECT_LT(std::abs(table.number_at(r, 2)), 1.5);
}

TEST(Experiments, Fig3WaveformSummaryHasSpikes) {
    const auto table = run_fig3_axon_waveforms(quick_options());
    EXPECT_GE(table.number_at(0, 1), 2.0);  // spike count row
}

TEST(Experiments, OverheadTableCoversAllDefenses) {
    const auto table = run_defense_overheads(quick_options());
    EXPECT_EQ(table.num_rows(), 5u);
    EXPECT_EQ(table.columns().size(), 5u);
}

}  // namespace
}  // namespace snnfi::core
