#include "snn/nodes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace snnfi::snn {
namespace {

LifParams fast_params() {
    LifParams p;
    p.v_rest = -65.0f;
    p.v_reset = -60.0f;
    p.v_thresh = -52.0f;
    p.tau_ms = 100.0f;
    p.refrac_steps = 5;
    return p;
}

TEST(LifLayer, IntegratesInput) {
    LifLayer layer(1, fast_params());
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{5.0f}, spiked);
    EXPECT_EQ(spiked[0], 0);
    EXPECT_GT(layer.voltages()[0], -65.0f);
    EXPECT_LT(layer.voltages()[0], -52.0f);
}

TEST(LifLayer, SpikesAboveThresholdAndResets) {
    LifLayer layer(1, fast_params());
    std::vector<std::uint8_t> spiked;
    const std::size_t count = layer.step(std::vector<float>{20.0f}, spiked);
    EXPECT_EQ(count, 1u);
    EXPECT_EQ(spiked[0], 1);
    EXPECT_FLOAT_EQ(layer.voltages()[0], -60.0f);  // reset value
}

TEST(LifLayer, RefractoryBlocksIntegration) {
    LifLayer layer(1, fast_params());
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{20.0f}, spiked);  // spike
    for (int step = 0; step < 5; ++step) {
        layer.step(std::vector<float>{20.0f}, spiked);
        EXPECT_EQ(spiked[0], 0) << "refractory step " << step;
    }
    layer.step(std::vector<float>{20.0f}, spiked);  // refractory over
    EXPECT_EQ(spiked[0], 1);
}

TEST(LifLayer, LeaksTowardsRest) {
    LifLayer layer(1, fast_params());
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{10.0f}, spiked);
    const float v1 = layer.voltages()[0];
    layer.step(std::vector<float>{0.0f}, spiked);
    const float v2 = layer.voltages()[0];
    EXPECT_LT(v2, v1);
    EXPECT_GT(v2, -65.0f);
    // One step of decay: v2 - rest = decay * (v1 - rest).
    const float decay = std::exp(-1.0f / 100.0f);
    EXPECT_NEAR(v2, -65.0f + decay * (v1 + 65.0f), 1e-4);
}

TEST(LifLayer, ResetStateClearsDynamics) {
    LifLayer layer(2, fast_params());
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{20.0f, 5.0f}, spiked);
    layer.reset_state();
    EXPECT_FLOAT_EQ(layer.voltages()[0], -65.0f);
    EXPECT_FLOAT_EQ(layer.voltages()[1], -65.0f);
}

TEST(LifLayer, ThresholdScaleFaultDistanceSemantics) {
    LifLayer layer(2, fast_params());
    const std::vector<std::size_t> target = {0};
    layer.apply_threshold_scale(target, 0.8f);  // 20% closer to rest
    // dist = 13 mV -> 10.4 mV -> threshold -54.6 mV.
    EXPECT_NEAR(layer.effective_threshold(0), -65.0 + 13.0 * 0.8, 1e-4);
    EXPECT_NEAR(layer.effective_threshold(1), -52.0, 1e-4);

    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{11.0f, 11.0f}, spiked);
    EXPECT_EQ(spiked[0], 1);  // lowered threshold fires
    EXPECT_EQ(spiked[1], 0);  // nominal does not
}

TEST(LifLayer, ThresholdValueDeltaPaperSemantics) {
    LifLayer layer(1, fast_params());
    const std::vector<std::size_t> target = {0};
    // BindsNET semantics: thresh' = -52 * (1 - 0.2) = -41.6 mV -> dist 23.4.
    layer.apply_threshold_value_delta(target, -0.2f);
    EXPECT_NEAR(layer.effective_threshold(0), -41.6, 1e-3);
    // +20%: thresh' = -62.4 mV -> dist 2.6 (easier firing).
    layer.apply_threshold_value_delta(target, +0.2f);
    EXPECT_NEAR(layer.effective_threshold(0), -62.4, 1e-3);
}

TEST(LifLayer, InputGainFault) {
    LifLayer layer(2, fast_params());
    const std::vector<std::size_t> target = {1};
    layer.apply_input_gain(target, 2.0f);
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{7.0f, 7.0f}, spiked);
    EXPECT_EQ(spiked[0], 0);  // 7 mV < 13 mV distance
    EXPECT_EQ(spiked[1], 1);  // 14 mV with gain 2
}

TEST(LifLayer, ClearFaultsRestoresNominal) {
    LifLayer layer(1, fast_params());
    const std::vector<std::size_t> target = {0};
    layer.apply_threshold_scale(target, 0.5f);
    layer.apply_input_gain(target, 3.0f);
    layer.clear_faults();
    EXPECT_FLOAT_EQ(layer.threshold_scale(0), 1.0f);
    EXPECT_FLOAT_EQ(layer.input_gain(0), 1.0f);
}

TEST(LifLayer, Validation) {
    EXPECT_THROW(LifLayer(0, fast_params()), std::invalid_argument);
    LifParams bad = fast_params();
    bad.tau_ms = 0.0f;
    EXPECT_THROW(LifLayer(1, bad), std::invalid_argument);
    LifLayer layer(2, fast_params());
    std::vector<std::uint8_t> spiked;
    EXPECT_THROW(layer.step(std::vector<float>{1.0f}, spiked), std::invalid_argument);
    EXPECT_THROW(layer.apply_input_gain(std::vector<std::size_t>{5}, 1.0f),
                 std::out_of_range);
}

TEST(DiehlCookLayer, ThetaGrowsPerSpikeAndRaisesThreshold) {
    DiehlCookParams params;
    DiehlCookLayer layer(1, params);
    std::vector<std::uint8_t> spiked;
    const float thr_before = layer.effective_threshold(0);
    layer.step(std::vector<float>{20.0f}, spiked);
    ASSERT_EQ(spiked[0], 1);
    EXPECT_NEAR(layer.theta()[0], params.theta_plus, 1e-6);
    EXPECT_GT(layer.effective_threshold(0), thr_before);
}

TEST(DiehlCookLayer, ThetaDecays) {
    DiehlCookParams params;
    params.theta_decay_ms = 10.0f;  // fast decay for the test
    DiehlCookLayer layer(1, params);
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{20.0f}, spiked);
    const float theta_after_spike = layer.theta()[0];
    for (int step = 0; step < 50; ++step) layer.step(std::vector<float>{0.0f}, spiked);
    EXPECT_LT(layer.theta()[0], 0.05f * theta_after_spike);
}

TEST(DiehlCookLayer, ThetaSurvivesResetState) {
    DiehlCookLayer layer(1, DiehlCookParams{});
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{20.0f}, spiked);
    const float theta = layer.theta()[0];
    layer.reset_state();
    EXPECT_FLOAT_EQ(layer.theta()[0], theta);  // adaptation persists
    layer.reset_adaptation();
    EXPECT_FLOAT_EQ(layer.theta()[0], 0.0f);
}

TEST(DiehlCookLayer, ThresholdFaultDoesNotScaleTheta) {
    DiehlCookLayer layer(1, DiehlCookParams{});
    std::vector<std::uint8_t> spiked;
    layer.step(std::vector<float>{20.0f}, spiked);  // theta = theta_plus
    const std::vector<std::size_t> target = {0};
    layer.apply_threshold_scale(target, 0.5f);
    // rest + dist*0.5 + theta
    EXPECT_NEAR(layer.effective_threshold(0), -65.0 + 13.0 * 0.5 + 0.05, 1e-3);
}

/// Property: over a grid of deltas the two semantics agree in sign of the
/// firing-rate change they induce (value semantics inverts the sign).
class ThresholdSemanticsSweep : public ::testing::TestWithParam<float> {};

TEST_P(ThresholdSemanticsSweep, ValueSemanticsInvertsEffect) {
    const float delta = GetParam();
    LifLayer distance(1, fast_params());
    LifLayer value(1, fast_params());
    const std::vector<std::size_t> target = {0};
    distance.apply_threshold_scale(target, 1.0f + delta);
    value.apply_threshold_value_delta(target, delta);
    const double nominal = -52.0;
    if (delta < 0.0f) {
        EXPECT_LT(distance.effective_threshold(0), nominal);  // easier
        EXPECT_GT(value.effective_threshold(0), nominal);     // harder
    } else {
        EXPECT_GT(distance.effective_threshold(0), nominal);
        EXPECT_LT(value.effective_threshold(0), nominal);
    }
}

INSTANTIATE_TEST_SUITE_P(Deltas, ThresholdSemanticsSweep,
                         ::testing::Values(-0.2f, -0.1f, 0.1f, 0.2f));

}  // namespace
}  // namespace snnfi::snn
