#include "snn/encoding.hpp"

#include <gtest/gtest.h>

namespace snnfi::snn {
namespace {

TEST(PoissonEncoder, ZeroImageProducesNoSpikes) {
    PoissonEncoder encoder;
    encoder.set_image(std::vector<float>(100, 0.0f));
    util::Rng rng(1);
    std::vector<std::uint32_t> active;
    for (int step = 0; step < 100; ++step) {
        encoder.step(rng, active);
        EXPECT_TRUE(active.empty());
    }
}

TEST(PoissonEncoder, RateMatchesIntensity) {
    PoissonEncoderConfig config;
    config.max_rate_hz = 100.0;
    config.dt_ms = 1.0;
    PoissonEncoder encoder(config);
    std::vector<float> image(2, 0.0f);
    image[0] = 1.0f;   // 100 Hz -> p = 0.1/step
    image[1] = 0.25f;  // 25 Hz -> p = 0.025/step
    encoder.set_image(image);

    util::Rng rng(7);
    std::vector<std::uint32_t> active;
    int count0 = 0, count1 = 0;
    const int steps = 40000;
    for (int step = 0; step < steps; ++step) {
        encoder.step(rng, active);
        for (const auto idx : active) {
            if (idx == 0) ++count0;
            if (idx == 1) ++count1;
        }
    }
    EXPECT_NEAR(static_cast<double>(count0) / steps, 0.1, 0.01);
    EXPECT_NEAR(static_cast<double>(count1) / steps, 0.025, 0.005);
}

TEST(PoissonEncoder, DeterministicGivenSeed) {
    PoissonEncoder encoder;
    std::vector<float> image(50, 0.3f);
    encoder.set_image(image);
    util::Rng rng_a(99), rng_b(99);
    const auto raster_a = encode_raster(encoder, 200, rng_a);
    const auto raster_b = encode_raster(encoder, 200, rng_b);
    EXPECT_EQ(raster_a, raster_b);
}

TEST(PoissonEncoder, IntensityClampedToUnitRange) {
    PoissonEncoderConfig config;
    config.max_rate_hz = 500.0;
    config.dt_ms = 1.0;
    PoissonEncoder encoder(config);
    std::vector<float> image = {5.0f, -2.0f};  // clamp to 1 and 0
    encoder.set_image(image);
    util::Rng rng(3);
    std::vector<std::uint32_t> active;
    int count0 = 0, count1 = 0;
    for (int step = 0; step < 2000; ++step) {
        encoder.step(rng, active);
        for (const auto idx : active) {
            if (idx == 0) ++count0;
            if (idx == 1) ++count1;
        }
    }
    EXPECT_NEAR(count0 / 2000.0, 0.5, 0.05);  // p clamped at rate*dt = 0.5
    EXPECT_EQ(count1, 0);
}

TEST(PoissonEncoder, ProbabilityCappedAtOne) {
    PoissonEncoderConfig config;
    config.max_rate_hz = 5000.0;  // p would exceed 1
    PoissonEncoder encoder(config);
    encoder.set_image(std::vector<float>{1.0f});
    util::Rng rng(5);
    std::vector<std::uint32_t> active;
    for (int step = 0; step < 100; ++step) {
        encoder.step(rng, active);
        ASSERT_EQ(active.size(), 1u);  // fires every step, never more
    }
}

TEST(PoissonEncoder, SizeTracksImage) {
    PoissonEncoder encoder;
    encoder.set_image(std::vector<float>(784, 0.5f));
    EXPECT_EQ(encoder.size(), 784u);
}

/// Property: total spike count scales linearly with intensity.
class EncoderRateSweep : public ::testing::TestWithParam<float> {};

TEST_P(EncoderRateSweep, MeanRateProportionalToIntensity) {
    const float intensity = GetParam();
    PoissonEncoderConfig config;
    config.max_rate_hz = 128.0;
    PoissonEncoder encoder(config);
    encoder.set_image(std::vector<float>(20, intensity));
    util::Rng rng(31);
    std::vector<std::uint32_t> active;
    std::size_t total = 0;
    const int steps = 20000;
    for (int step = 0; step < steps; ++step) {
        encoder.step(rng, active);
        total += active.size();
    }
    const double expected = 20.0 * intensity * 0.128 * steps / 1000.0 * 1000.0;
    const double measured = static_cast<double>(total);
    EXPECT_NEAR(measured, expected, expected * 0.05 + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Intensities, EncoderRateSweep,
                         ::testing::Values(0.1f, 0.3f, 0.5f, 0.9f));

}  // namespace
}  // namespace snnfi::snn
