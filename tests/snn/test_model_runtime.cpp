// Model/Runtime split: bit-for-bit equivalence with the deprecated
// DiehlCookNetwork facade (init, training, inference, faults), freeze
// round trips, copy-on-write weight patches, and lockstep batch runs.
#include "snn/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "attack/fault_model.hpp"
#include "data/synthetic_digits.hpp"
#include "snn/trainer.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 24;
    cfg.steps_per_sample = 120;
    return cfg;
}

bool same_bits(std::span<const float> a, std::span<const float> b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(NetworkModel, RandomInitMatchesFacadeBitExact) {
    const auto model = NetworkModel::random(tiny_config(), 7);
    DiehlCookNetwork facade(tiny_config(), 7);
    EXPECT_TRUE(same_bits(model->input_weights().flat(),
                          facade.input_connection().weights().flat()));
    for (const float theta : model->exc_theta()) EXPECT_EQ(theta, 0.0f);
}

TEST(NetworkRuntime, TrainingMatchesFacadeBitExact) {
    const auto dataset = data::make_synthetic_dataset(60, 11);

    DiehlCookNetwork facade(tiny_config(), 13);
    const TrainResult facade_result = Trainer(facade, 30).run(dataset);

    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 13));
    const TrainResult runtime_result = Trainer(runtime, 30).run(dataset);

    EXPECT_DOUBLE_EQ(runtime_result.train_accuracy, facade_result.train_accuracy);
    EXPECT_DOUBLE_EQ(runtime_result.retro_accuracy, facade_result.retro_accuracy);
    EXPECT_EQ(runtime_result.total_exc_spikes, facade_result.total_exc_spikes);
    EXPECT_EQ(runtime_result.total_inh_spikes, facade_result.total_inh_spikes);

    const auto frozen = runtime.freeze();
    EXPECT_TRUE(same_bits(frozen->input_weights().flat(),
                          facade.input_connection().weights().flat()));
    EXPECT_TRUE(same_bits(frozen->exc_theta(), facade.excitatory().theta()));
}

TEST(NetworkRuntime, InferenceMatchesFacadeBitExact) {
    const auto dataset = data::make_synthetic_dataset(30, 5);
    DiehlCookNetwork facade(tiny_config(), 9);
    (void)Trainer(facade, 15).run(dataset);

    NetworkRuntime runtime(NetworkModel::freeze(facade));
    facade.set_learning(false);
    facade.rng().reseed(0xBEEF);
    runtime.rng().reseed(0xBEEF);
    for (std::size_t i = 0; i < 5; ++i) {
        const SampleActivity a = facade.run_sample(dataset.images[i]);
        const SampleActivity b = runtime.run_sample(dataset.images[i]);
        EXPECT_EQ(a.exc_counts, b.exc_counts) << "sample " << i;
        EXPECT_EQ(a.total_inh_spikes, b.total_inh_spikes) << "sample " << i;
    }
}

TEST(NetworkRuntime, OverlayFaultsMatchFacadeMutators) {
    util::Rng rng(1);
    const auto image = data::render_digit(4, rng, {});

    attack::FaultSpec fault;
    fault.layer = attack::TargetLayer::kBoth;
    fault.fraction = 0.5;
    fault.threshold_delta = -0.2;
    fault.driver_gain = 1.1;

    DiehlCookNetwork facade(tiny_config(), 21);
    attack::apply_fault(facade, fault);
    facade.rng().reseed(0xF00D);

    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 21),
                           attack::overlay_for(fault, tiny_config()));
    runtime.rng().reseed(0xF00D);

    // Both run with learning OFF on the facade side for parity.
    facade.set_learning(false);
    const SampleActivity a = facade.run_sample(image);
    const SampleActivity b = runtime.run_sample(image);
    EXPECT_EQ(a.exc_counts, b.exc_counts);
    EXPECT_EQ(a.total_inh_spikes, b.total_inh_spikes);
}

TEST(NetworkRuntime, WeightPatchesAreCopyOnWrite) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    FaultOverlay overlay;
    overlay.set_weight(5, 2, 0.75f);
    NetworkRuntime runtime(model, overlay);

    // Only the patched row is materialised; all others alias the model.
    EXPECT_EQ(runtime.weight_row(0).data(), model->weight_row(0).data());
    EXPECT_NE(runtime.weight_row(5).data(), model->weight_row(5).data());
    EXPECT_EQ(runtime.weight_row(5)[2], 0.75f);
    // The shared model itself is untouched.
    EXPECT_NE(model->input_weights()(5, 2), 0.75f);

    // Clearing the overlay drops the materialised row.
    runtime.set_overlay(FaultOverlay{});
    EXPECT_EQ(runtime.weight_row(5).data(), model->weight_row(5).data());
}

TEST(NetworkRuntime, FreezeAfterPatchMaterialisesThePatch) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    FaultOverlay overlay;
    overlay.set_weight(7, 1, 0.5f);
    NetworkRuntime runtime(model, overlay);
    const auto frozen = runtime.freeze();
    EXPECT_EQ(frozen->input_weights()(7, 1), 0.5f);
    // Everything else is the model's values, bit-exact.
    EXPECT_EQ(frozen->input_weights()(7, 0), model->input_weights()(7, 0));
    EXPECT_TRUE(same_bits(frozen->weight_row(0), model->weight_row(0)));
}

TEST(BatchRunner, LockstepMatchesStandaloneRuns) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    DiehlCookNetwork facade(tiny_config(), 9);
    (void)Trainer(facade, 10).run(dataset);
    const auto model = NetworkModel::freeze(facade);

    FaultOverlay dead;
    const std::size_t mask[] = {3};
    dead.force_state(OverlayLayer::kExcitatory, mask, NeuronFault::kDead);
    FaultOverlay gain;
    gain.set_driver_gain(1.2f);

    const std::vector<FaultOverlay> overlays = {FaultOverlay{}, dead, gain};
    // Standalone reference runs, one shared stream per replica.
    std::vector<std::vector<std::uint32_t>> reference;
    for (const FaultOverlay& overlay : overlays) {
        NetworkRuntime runtime(model, overlay);
        runtime.rng().reseed(0xABCD);
        std::vector<std::uint32_t> counts;
        for (std::size_t i = 0; i < 4; ++i) {
            const auto activity = runtime.run_sample(dataset.images[i]);
            counts.insert(counts.end(), activity.exc_counts.begin(),
                          activity.exc_counts.end());
        }
        reference.push_back(std::move(counts));
    }

    // The same three replicas advanced in lockstep.
    std::vector<NetworkRuntime> runtimes;
    runtimes.reserve(overlays.size());
    std::vector<NetworkRuntime*> members;
    for (const FaultOverlay& overlay : overlays) runtimes.emplace_back(model, overlay);
    for (NetworkRuntime& runtime : runtimes) members.push_back(&runtime);
    BatchRunner batch(*model, members);
    util::Rng rng(0);
    rng.reseed(0xABCD);
    std::vector<std::vector<std::uint32_t>> batched(overlays.size());
    for (std::size_t i = 0; i < 4; ++i) {
        const auto activities = batch.run_sample(dataset.images[i], rng);
        for (std::size_t k = 0; k < activities.size(); ++k) {
            batched[k].insert(batched[k].end(), activities[k].exc_counts.begin(),
                              activities[k].exc_counts.end());
        }
    }
    for (std::size_t k = 0; k < overlays.size(); ++k)
        EXPECT_EQ(batched[k], reference[k]) << "replica " << k;
}

TEST(BatchRunner, RejectsForeignModelsAndLearningRuntimes) {
    const auto model = NetworkModel::random(tiny_config(), 1);
    const auto other = NetworkModel::random(tiny_config(), 2);
    NetworkRuntime mine(model);
    NetworkRuntime foreign(other);
    EXPECT_THROW(BatchRunner(*model, {&mine, &foreign}), std::invalid_argument);

    NetworkRuntime learner(model);
    learner.set_learning(true);
    EXPECT_THROW(BatchRunner(*model, {&learner}), std::invalid_argument);
    EXPECT_THROW(BatchRunner(*model, {}), std::invalid_argument);
}

}  // namespace
}  // namespace snnfi::snn
