// Model/Runtime split: deterministic init/training/inference, freeze round
// trips, fault-spec overlay expansion, copy-on-write weight patches, and
// lockstep batch runs.
#include "snn/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "attack/fault_model.hpp"
#include "data/synthetic_digits.hpp"
#include "snn/trainer.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 24;
    cfg.steps_per_sample = 120;
    return cfg;
}

bool same_bits(std::span<const float> a, std::span<const float> b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Trains a fresh runtime and freezes the learned parameters.
std::shared_ptr<const NetworkModel> trained_model(const Dataset& dataset,
                                                  std::uint64_t seed,
                                                  std::size_t window) {
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), seed));
    (void)Trainer(runtime, window).run(dataset);
    return runtime.freeze();
}

TEST(NetworkModel, RandomInitDeterministicBitExact) {
    const auto a = NetworkModel::random(tiny_config(), 7);
    const auto b = NetworkModel::random(tiny_config(), 7);
    EXPECT_TRUE(same_bits(a->input_weights().to_vector(),
                          b->input_weights().to_vector()));
    const auto c = NetworkModel::random(tiny_config(), 8);
    EXPECT_FALSE(same_bits(a->input_weights().to_vector(),
                           c->input_weights().to_vector()));
    for (const float theta : a->exc_theta()) EXPECT_EQ(theta, 0.0f);
}

TEST(NetworkRuntime, TrainingDeterministicAndFreezeRoundTrips) {
    const auto dataset = data::make_synthetic_dataset(60, 11);

    NetworkRuntime first(NetworkModel::random(tiny_config(), 13));
    const TrainResult result_a = Trainer(first, 30).run(dataset);
    NetworkRuntime second(NetworkModel::random(tiny_config(), 13));
    const TrainResult result_b = Trainer(second, 30).run(dataset);

    EXPECT_DOUBLE_EQ(result_a.train_accuracy, result_b.train_accuracy);
    EXPECT_DOUBLE_EQ(result_a.retro_accuracy, result_b.retro_accuracy);
    EXPECT_EQ(result_a.total_exc_spikes, result_b.total_exc_spikes);
    EXPECT_EQ(result_a.total_inh_spikes, result_b.total_inh_spikes);

    const auto frozen_a = first.freeze();
    const auto frozen_b = second.freeze();
    EXPECT_TRUE(same_bits(frozen_a->input_weights().to_vector(),
                          frozen_b->input_weights().to_vector()));
    EXPECT_TRUE(same_bits(frozen_a->exc_theta(), frozen_b->exc_theta()));
    // Training actually moved the adaptive thresholds.
    float theta_total = 0.0f;
    for (const float theta : frozen_a->exc_theta()) theta_total += theta;
    EXPECT_GT(theta_total, 0.0f);
}

TEST(NetworkRuntime, InferenceOnFrozenModelIsDeterministic) {
    const auto dataset = data::make_synthetic_dataset(30, 5);
    const auto model = trained_model(dataset, 9, 15);

    NetworkRuntime a(model);
    NetworkRuntime b(model);
    a.rng().reseed(0xBEEF);
    b.rng().reseed(0xBEEF);
    for (std::size_t i = 0; i < 5; ++i) {
        const SampleActivity act_a = a.run_sample(dataset.images[i]);
        const SampleActivity act_b = b.run_sample(dataset.images[i]);
        EXPECT_EQ(act_a.exc_counts, act_b.exc_counts) << "sample " << i;
        EXPECT_EQ(act_a.total_inh_spikes, act_b.total_inh_spikes) << "sample " << i;
    }
}

TEST(NetworkRuntime, OverlayForExpandsFaultSpec) {
    attack::FaultSpec fault;
    fault.layer = attack::TargetLayer::kBoth;
    fault.fraction = 0.5;
    fault.threshold_delta = -0.2;
    fault.driver_gain = 1.1;

    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 21),
                           attack::overlay_for(fault, tiny_config()));
    EXPECT_FLOAT_EQ(runtime.driver_gain(), 1.1f);
    // Exactly half of each layer carries a shifted threshold.
    for (const OverlayLayer layer :
         {OverlayLayer::kExcitatory, OverlayLayer::kInhibitory}) {
        std::size_t shifted = 0;
        for (std::size_t i = 0; i < tiny_config().n_neurons; ++i) {
            if (runtime.threshold_scale(layer, i) != 1.0f) ++shifted;
        }
        EXPECT_EQ(shifted, tiny_config().n_neurons / 2) << to_string(layer);
    }
    // The two layers draw independent masks from the same seed.
    std::vector<bool> exc_mask, inh_mask;
    for (std::size_t i = 0; i < tiny_config().n_neurons; ++i) {
        exc_mask.push_back(runtime.threshold_scale(OverlayLayer::kExcitatory, i) !=
                           1.0f);
        inh_mask.push_back(runtime.threshold_scale(OverlayLayer::kInhibitory, i) !=
                           1.0f);
    }
    EXPECT_NE(exc_mask, inh_mask);
}

TEST(NetworkRuntime, WeightPatchesAreCopyOnWrite) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    FaultOverlay overlay;
    overlay.set_weight(5, 2, 0.75f);
    NetworkRuntime runtime(model, overlay);

    // Only the patched row is materialised; all others alias the model.
    EXPECT_EQ(runtime.weight_row(0).data(), model->weight_row(0).data());
    EXPECT_NE(runtime.weight_row(5).data(), model->weight_row(5).data());
    EXPECT_EQ(runtime.weight_row(5)[2], 0.75f);
    // The shared model itself is untouched.
    EXPECT_NE(model->input_weights()(5, 2), 0.75f);

    // Clearing the overlay drops the materialised row.
    runtime.set_overlay(FaultOverlay{});
    EXPECT_EQ(runtime.weight_row(5).data(), model->weight_row(5).data());
}

TEST(NetworkRuntime, FreezeAfterPatchMaterialisesThePatch) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    FaultOverlay overlay;
    overlay.set_weight(7, 1, 0.5f);
    NetworkRuntime runtime(model, overlay);
    const auto frozen = runtime.freeze();
    EXPECT_EQ(frozen->input_weights()(7, 1), 0.5f);
    // Everything else is the model's values, bit-exact.
    EXPECT_EQ(frozen->input_weights()(7, 0), model->input_weights()(7, 0));
    EXPECT_TRUE(same_bits(frozen->weight_row(0), model->weight_row(0)));
}

TEST(BatchRunner, LockstepMatchesStandaloneRuns) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    const auto model = trained_model(dataset, 9, 10);

    FaultOverlay dead;
    const std::size_t mask[] = {3};
    dead.force_state(OverlayLayer::kExcitatory, mask, NeuronFault::kDead);
    FaultOverlay gain;
    gain.set_driver_gain(1.2f);

    const std::vector<FaultOverlay> overlays = {FaultOverlay{}, dead, gain};
    // Standalone reference runs, one shared stream per replica.
    std::vector<std::vector<std::uint32_t>> reference;
    for (const FaultOverlay& overlay : overlays) {
        NetworkRuntime runtime(model, overlay);
        runtime.rng().reseed(0xABCD);
        std::vector<std::uint32_t> counts;
        for (std::size_t i = 0; i < 4; ++i) {
            const auto activity = runtime.run_sample(dataset.images[i]);
            counts.insert(counts.end(), activity.exc_counts.begin(),
                          activity.exc_counts.end());
        }
        reference.push_back(std::move(counts));
    }

    // The same three replicas advanced in lockstep.
    std::vector<NetworkRuntime> runtimes;
    runtimes.reserve(overlays.size());
    std::vector<NetworkRuntime*> members;
    for (const FaultOverlay& overlay : overlays) runtimes.emplace_back(model, overlay);
    for (NetworkRuntime& runtime : runtimes) members.push_back(&runtime);
    BatchRunner batch(*model, members);
    util::Rng rng(0);
    rng.reseed(0xABCD);
    std::vector<std::vector<std::uint32_t>> batched(overlays.size());
    for (std::size_t i = 0; i < 4; ++i) {
        const auto activities = batch.run_sample(dataset.images[i], rng);
        for (std::size_t k = 0; k < activities.size(); ++k) {
            batched[k].insert(batched[k].end(), activities[k].exc_counts.begin(),
                              activities[k].exc_counts.end());
        }
    }
    for (std::size_t k = 0; k < overlays.size(); ++k)
        EXPECT_EQ(batched[k], reference[k]) << "replica " << k;
}

TEST(BatchRunner, RejectsForeignModelsAndLearningRuntimes) {
    const auto model = NetworkModel::random(tiny_config(), 1);
    const auto other = NetworkModel::random(tiny_config(), 2);
    NetworkRuntime mine(model);
    NetworkRuntime foreign(other);
    EXPECT_THROW(BatchRunner(*model, {&mine, &foreign}), std::invalid_argument);

    NetworkRuntime learner(model);
    learner.set_learning(true);
    EXPECT_THROW(BatchRunner(*model, {&learner}), std::invalid_argument);
    EXPECT_THROW(BatchRunner(*model, {}), std::invalid_argument);
}

}  // namespace
}  // namespace snnfi::snn
