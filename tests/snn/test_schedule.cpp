// Scheduled overlays: piecewise fault activation at step boundaries.
// The invariants the glitch pipeline rests on: a one-segment full-range
// schedule is bit-identical to the static overlay, schedules reset between
// samples, swaps preserve dynamic state, and the lockstep batch path
// agrees with standalone scheduled runs.
#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "snn/model.hpp"
#include "snn/runtime.hpp"
#include "snn/trainer.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 20;
    cfg.steps_per_sample = 120;
    return cfg;
}

std::shared_ptr<const NetworkModel> trained_model() {
    static const std::shared_ptr<const NetworkModel> model = [] {
        const auto dataset = data::make_synthetic_dataset(30, 5);
        NetworkRuntime runtime(NetworkModel::random(tiny_config(), 9));
        (void)Trainer(runtime, 15).run(dataset);
        return runtime.freeze();
    }();
    return model;
}

FaultOverlay glitch_overlay() {
    std::vector<std::size_t> all(tiny_config().n_neurons);
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    FaultOverlay overlay;
    overlay.shift_threshold_value(OverlayLayer::kExcitatory, all, -0.18f);
    overlay.shift_threshold_value(OverlayLayer::kInhibitory, all, -0.18f);
    overlay.set_driver_gain(0.68f);
    return overlay;
}

std::vector<std::uint32_t> run_counts(NetworkRuntime& runtime,
                                      const Dataset& dataset, std::size_t samples,
                                      std::uint64_t seed) {
    runtime.rng().reseed(seed);
    std::vector<std::uint32_t> counts;
    for (std::size_t i = 0; i < samples; ++i) {
        const auto activity = runtime.run_sample(dataset.images[i]);
        counts.insert(counts.end(), activity.exc_counts.begin(),
                      activity.exc_counts.end());
    }
    return counts;
}

TEST(OverlaySchedule, FullRangeSegmentMatchesStaticOverlayBitExact) {
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = trained_model();

    NetworkRuntime static_runtime(model, glitch_overlay());
    NetworkRuntime scheduled_runtime(model);
    scheduled_runtime.set_schedule(
        {{0, tiny_config().steps_per_sample, glitch_overlay()}});

    EXPECT_EQ(run_counts(static_runtime, dataset, 4, 0xAB),
              run_counts(scheduled_runtime, dataset, 4, 0xAB));
}

TEST(OverlaySchedule, SegmentBeyondSampleNeverActivates) {
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = trained_model();

    NetworkRuntime clean(model);
    NetworkRuntime scheduled(model);
    scheduled.set_schedule({{tiny_config().steps_per_sample,
                             tiny_config().steps_per_sample + 10,
                             glitch_overlay()}});
    EXPECT_EQ(run_counts(clean, dataset, 3, 0xCD),
              run_counts(scheduled, dataset, 3, 0xCD));
}

TEST(OverlaySchedule, MidSampleGlitchDiffersFromCleanAndStatic) {
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = trained_model();

    NetworkRuntime clean(model);
    NetworkRuntime static_runtime(model, glitch_overlay());
    NetworkRuntime scheduled(model);
    scheduled.set_schedule({{40, 80, glitch_overlay()}});

    const auto clean_counts = run_counts(clean, dataset, 4, 0xEF);
    const auto static_counts = run_counts(static_runtime, dataset, 4, 0xEF);
    const auto glitch_counts = run_counts(scheduled, dataset, 4, 0xEF);
    EXPECT_NE(glitch_counts, clean_counts);
    EXPECT_NE(glitch_counts, static_counts);
}

TEST(OverlaySchedule, ResetsBetweenSamples) {
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = trained_model();
    const OverlaySchedule schedule = {
        {100, tiny_config().steps_per_sample, glitch_overlay()}};

    // The segment runs to the end of sample 1: runtime X relies on the
    // automatic between-samples reset, runtime Y re-installs the schedule
    // (a guaranteed-fresh cursor and base fault state) before sample 2.
    // Both see identical encoder streams and theta trajectories, so equal
    // sample-2 activity proves the automatic reset is complete.
    NetworkRuntime x(model);
    x.set_schedule(schedule);
    (void)run_counts(x, dataset, 1, 0x11);
    // Mid-segment at sample end: the segment's fault state is still
    // applied until the next sample begins.
    EXPECT_FLOAT_EQ(x.driver_gain(), 0.68f);
    x.rng().reseed(0x12);
    const auto second_auto = x.run_sample(dataset.images[1]).exc_counts;

    NetworkRuntime y(model);
    y.set_schedule(schedule);
    (void)run_counts(y, dataset, 1, 0x11);
    y.set_schedule(schedule);  // explicit fresh re-install
    EXPECT_FLOAT_EQ(y.driver_gain(), 1.0f);  // base state outside segments
    y.rng().reseed(0x12);
    const auto second_fresh = y.run_sample(dataset.images[1]).exc_counts;

    EXPECT_EQ(second_auto, second_fresh);
}

TEST(OverlaySchedule, MultiSegmentDeadWindowSuppressesSpikes) {
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = trained_model();
    std::vector<std::size_t> all(tiny_config().n_neurons);
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    FaultOverlay dead;
    dead.force_state(OverlayLayer::kExcitatory, all, NeuronFault::kDead);

    NetworkRuntime whole(model);
    whole.set_schedule({{0, tiny_config().steps_per_sample, dead}});
    NetworkRuntime brief(model);
    brief.set_schedule({{0, 10, dead}, {50, 60, dead}});

    EXPECT_EQ(run_counts(whole, dataset, 2, 0x22),
              std::vector<std::uint32_t>(2 * tiny_config().n_neurons, 0));
    std::size_t brief_total = 0;
    for (const std::uint32_t count : run_counts(brief, dataset, 2, 0x22))
        brief_total += count;
    EXPECT_GT(brief_total, 0u);
}

TEST(OverlaySchedule, BatchMatchesStandaloneScheduledRuns) {
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = trained_model();
    const OverlaySchedule schedule = {{30, 90, glitch_overlay()}};

    // Standalone references: clean, scheduled, static.
    std::vector<std::vector<std::uint32_t>> reference;
    {
        NetworkRuntime clean(model);
        reference.push_back(run_counts(clean, dataset, 3, 0x33));
        NetworkRuntime scheduled(model);
        scheduled.set_schedule(schedule);
        reference.push_back(run_counts(scheduled, dataset, 3, 0x33));
        NetworkRuntime static_runtime(model, glitch_overlay());
        reference.push_back(run_counts(static_runtime, dataset, 3, 0x33));
    }

    NetworkRuntime clean(model);
    NetworkRuntime scheduled(model);
    scheduled.set_schedule(schedule);
    NetworkRuntime static_runtime(model, glitch_overlay());
    BatchRunner batch(*model, {&clean, &scheduled, &static_runtime});
    util::Rng rng(0);
    rng.reseed(0x33);
    std::vector<std::vector<std::uint32_t>> batched(3);
    for (std::size_t i = 0; i < 3; ++i) {
        const auto activities = batch.run_sample(dataset.images[i], rng);
        for (std::size_t k = 0; k < 3; ++k) {
            batched[k].insert(batched[k].end(), activities[k].exc_counts.begin(),
                              activities[k].exc_counts.end());
        }
    }
    for (std::size_t k = 0; k < 3; ++k)
        EXPECT_EQ(batched[k], reference[k]) << "replica " << k;
}

TEST(OverlaySchedule, Validation) {
    const auto model = NetworkModel::random(tiny_config(), 1);
    NetworkRuntime runtime(model);
    // Empty segment.
    EXPECT_THROW(runtime.set_schedule({{10, 10, FaultOverlay{}}}),
                 std::invalid_argument);
    // Overlap / unsorted.
    EXPECT_THROW(runtime.set_schedule(
                     {{0, 50, FaultOverlay{}}, {40, 60, FaultOverlay{}}}),
                 std::invalid_argument);
    EXPECT_THROW(runtime.set_schedule(
                     {{50, 60, FaultOverlay{}}, {0, 10, FaultOverlay{}}}),
                 std::invalid_argument);

    // Schedules and learning now cooperate (the train-time glitch path):
    // enabling either order works.
    runtime.set_schedule({{0, 10, FaultOverlay{}}});
    runtime.set_learning(true);
    NetworkRuntime learner(model);
    learner.set_learning(true);
    learner.set_schedule({{0, 10, FaultOverlay{}}});
}

// --- training-time schedules (STDP under a mid-epoch glitch) -------------

/// Trains `samples` images and returns the final weights + theta so runs
/// can be compared bit-for-bit.
std::pair<std::vector<float>, std::vector<float>> train_and_freeze(
    NetworkRuntime& runtime, const Dataset& dataset, std::size_t samples) {
    Trainer trainer(runtime, 5);
    Dataset slice = dataset;
    slice.images.resize(samples);
    slice.labels.resize(samples);
    (void)trainer.run(slice);
    const auto frozen = runtime.freeze();
    return {frozen->input_weights().to_vector(),
            {frozen->exc_theta().begin(), frozen->exc_theta().end()}};
}

TEST(OverlaySchedule, FullRangeScheduleUnderLearningMatchesStaticBitExact) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    const auto model = NetworkModel::random(tiny_config(), 9);

    NetworkRuntime static_runtime(model, glitch_overlay());
    NetworkRuntime scheduled_runtime(model);
    scheduled_runtime.set_schedule(
        {{0, tiny_config().steps_per_sample, glitch_overlay()}});

    const auto static_state = train_and_freeze(static_runtime, dataset, 20);
    const auto scheduled_state = train_and_freeze(scheduled_runtime, dataset, 20);
    // The static train-under-fault path and the one-segment full-range
    // schedule are THE SAME training, bit for bit — the invariant the
    // fi.glitch.train fig7b regression rests on.
    EXPECT_EQ(static_state.first, scheduled_state.first);
    EXPECT_EQ(static_state.second, scheduled_state.second);
}

TEST(OverlaySchedule, MidSampleGlitchUnderLearningDiffersFromClean) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    const auto model = NetworkModel::random(tiny_config(), 9);

    NetworkRuntime clean(model);
    NetworkRuntime glitched(model);
    glitched.set_schedule({{40, 80, glitch_overlay()}});

    const auto clean_state = train_and_freeze(clean, dataset, 20);
    const auto glitched_state = train_and_freeze(glitched, dataset, 20);
    EXPECT_NE(clean_state.first, glitched_state.first);
}

TEST(OverlaySchedule, LearningWeightPatchesRetractAtSegmentBoundaries) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    FaultOverlay patch;
    patch.set_weight(5, 2, 0.75f);

    NetworkRuntime runtime(model);
    runtime.set_learning(true);
    runtime.set_learning(false);  // materialised matrix, STDP frozen
    const float original = runtime.weight_row(5)[2];
    ASSERT_NE(original, 0.75f);

    // One glitched sample: the patch applies inside [40, 80) and must be
    // retracted on the materialised matrix when the segment ends.
    runtime.set_schedule({{40, 80, patch}});
    const std::vector<float> image(tiny_config().n_input, 0.5f);
    (void)runtime.run_sample(image);
    EXPECT_EQ(runtime.weight_row(5)[2], original);
}

TEST(OverlaySchedule, BaseWeightPatchSurvivesParametricScheduleBoundaries) {
    // A persistent base-overlay weight patch crossed with a schedule that
    // carries NO weight ops: the segment boundaries must not roll the
    // patched row back (STDP keeps accumulating on it) — training with
    // the pure-boundary schedule is bit-identical to training without it.
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = NetworkModel::random(tiny_config(), 9);
    FaultOverlay patch;
    patch.set_weight(5, 2, 0.9f);

    NetworkRuntime plain(model, patch);
    NetworkRuntime crossed(model, patch);
    crossed.set_schedule({{40, 80, FaultOverlay{}}});  // boundary crossings only

    const auto plain_state = train_and_freeze(plain, dataset, 10);
    const auto crossed_state = train_and_freeze(crossed, dataset, 10);
    EXPECT_EQ(plain_state.first, crossed_state.first);
    EXPECT_EQ(plain_state.second, crossed_state.second);
}

TEST(OverlaySchedule, ScheduledOpOnPatchedRowRollsBackOnlyItsOwnWindow) {
    // A schedule segment stacking a weight op onto a row that already
    // carries a persistent base-overlay patch: retraction must undo only
    // the segment's window, not the pre-glitch STDP learning on the row.
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = NetworkModel::random(tiny_config(), 9);
    FaultOverlay base;
    base.set_weight(5, 2, 0.9f);
    NetworkRuntime runtime(model, base);
    Trainer trainer(runtime, 5);
    (void)trainer.run(dataset);  // STDP drifts row 5 under the base patch
    runtime.set_learning(false);
    const std::vector<float> learned_row(runtime.weight_row(5).begin(),
                                         runtime.weight_row(5).end());
    ASSERT_NE(learned_row,
              std::vector<float>(model->weight_row(5).begin(),
                                 model->weight_row(5).end()));

    FaultOverlay segment;
    segment.set_weight(5, 7, 0.1f);
    runtime.set_schedule({{40, 80, segment}});
    (void)runtime.run_sample(dataset.images[0]);
    // The segment has retracted: row 5 is back to its learned state (base
    // patch still in force), NOT the untrained model row.
    EXPECT_EQ(std::vector<float>(runtime.weight_row(5).begin(),
                                 runtime.weight_row(5).end()),
              learned_row);
}

TEST(NetworkRuntime, UnchangedRowPatchKeepsLearnedValuesWhenOpSetChanges) {
    // Adding an unrelated patch must not roll back STDP learning on a row
    // whose own patch stays in force; retracting that patch later rolls
    // its row back to the pre-patch snapshot (the transient semantic).
    const auto dataset = data::make_synthetic_dataset(10, 7);
    const auto model = NetworkModel::random(tiny_config(), 9);
    FaultOverlay base;
    base.set_weight(5, 2, 0.9f);
    NetworkRuntime runtime(model, base);
    Trainer trainer(runtime, 5);
    (void)trainer.run(dataset);
    const std::vector<float> learned_row(runtime.weight_row(5).begin(),
                                         runtime.weight_row(5).end());

    FaultOverlay more = base;       // row-5 op unchanged...
    more.set_weight(9, 1, 0.5f);    // ...plus an unrelated row-9 patch
    runtime.set_overlay(more);
    EXPECT_EQ(std::vector<float>(runtime.weight_row(5).begin(),
                                 runtime.weight_row(5).end()),
              learned_row);
    EXPECT_EQ(runtime.weight_row(9)[1], 0.5f);

    // Dropping the row-5 patch restores its pre-patch snapshot.
    FaultOverlay only_nine;
    only_nine.set_weight(9, 1, 0.5f);
    runtime.set_overlay(only_nine);
    const auto model_row = model->weight_row(5);
    EXPECT_EQ(std::vector<float>(runtime.weight_row(5).begin(),
                                 runtime.weight_row(5).end()),
              std::vector<float>(model_row.begin(), model_row.end()));
}

TEST(NetworkRuntime, LearningSetOverlayRestoresPatchedRows) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    NetworkRuntime runtime(model);
    runtime.set_learning(true);
    const float original = runtime.weight_row(7)[1];

    FaultOverlay patch;
    patch.set_weight(7, 1, 0.5f);
    runtime.set_overlay(patch);
    EXPECT_EQ(runtime.weight_row(7)[1], 0.5f);

    // The documented footgun is gone: swapping the overlay restores the
    // patched row on the materialised matrix.
    runtime.set_overlay(FaultOverlay{});
    EXPECT_EQ(runtime.weight_row(7)[1], original);
}

}  // namespace
}  // namespace snnfi::snn
