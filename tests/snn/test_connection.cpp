#include "snn/connection.hpp"

#include <gtest/gtest.h>

namespace snnfi::snn {
namespace {

StdpParams test_params() {
    StdpParams p;
    p.nu_pre = 0.1f;
    p.nu_post = 0.2f;
    p.trace_tau_ms = 20.0f;
    p.wmin = 0.0f;
    p.wmax = 1.0f;
    return p;
}

TEST(DenseConnection, InitialWeightsInRangeAndNormalized) {
    util::Rng rng(3);
    DenseConnection conn(10, 4, test_params(), /*norm_total=*/2.0f, rng);
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(conn.weights().column_sum(j), 2.0f, 1e-4);
    for (const float w : conn.weights().to_vector()) EXPECT_GE(w, 0.0f);
}

TEST(DenseConnection, PropagateSumsActiveRows) {
    util::Rng rng(3);
    DenseConnection conn(3, 2, test_params(), /*norm_total=*/0.0f, rng);
    conn.weights().fill(0.0f);
    conn.weights()(0, 0) = 1.0f;
    conn.weights()(0, 1) = 2.0f;
    conn.weights()(2, 0) = 5.0f;
    std::vector<float> out(2, 0.0f);
    const std::vector<std::uint32_t> active = {0, 2};
    conn.propagate(active, out);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);
    std::vector<float> too_small(1, 0.0f);
    EXPECT_THROW(conn.propagate(active, too_small), std::invalid_argument);
    // Oversized (padded) outputs are allowed: extra lanes only ever
    // accumulate the all-zero padding of the weight rows.
    std::vector<float> padded(3, 7.0f);
    conn.propagate(active, padded);
    EXPECT_FLOAT_EQ(padded[0], 13.0f);
    EXPECT_FLOAT_EQ(padded[1], 9.0f);
    EXPECT_FLOAT_EQ(padded[2], 7.0f);
}

TEST(DenseConnection, PreEventDepressesViaPostTrace) {
    util::Rng rng(3);
    DenseConnection conn(2, 1, test_params(), 0.0f, rng);
    conn.weights().fill(0.5f);
    // First a post spike (sets post trace), then a pre spike: depression.
    conn.learn({}, std::vector<std::uint8_t>{1});
    const float w_before = conn.weights()(0, 0);
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});
    EXPECT_LT(conn.weights()(0, 0), w_before);
    // Pre neuron 1 never spiked: untouched.
    EXPECT_FLOAT_EQ(conn.weights()(1, 0), w_before);
}

TEST(DenseConnection, PostEventPotentiatesViaPreTrace) {
    util::Rng rng(3);
    DenseConnection conn(2, 1, test_params(), 0.0f, rng);
    conn.weights().fill(0.5f);
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});  // pre trace
    const float w_before = conn.weights()(0, 0);
    conn.learn({}, std::vector<std::uint8_t>{1});  // post spike
    EXPECT_GT(conn.weights()(0, 0), w_before);
    EXPECT_FLOAT_EQ(conn.weights()(1, 0), 0.5f);  // no pre trace on input 1
}

TEST(DenseConnection, WeightsClampedToBounds) {
    util::Rng rng(3);
    StdpParams params = test_params();
    params.nu_pre = 10.0f;
    params.nu_post = 10.0f;
    DenseConnection conn(1, 1, params, 0.0f, rng);
    conn.weights().fill(0.5f);
    conn.learn({}, std::vector<std::uint8_t>{1});          // post trace = 1
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});
    EXPECT_FLOAT_EQ(conn.weights()(0, 0), 0.0f);           // clamped at wmin
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});
    conn.learn({}, std::vector<std::uint8_t>{1});
    EXPECT_FLOAT_EQ(conn.weights()(0, 0), 1.0f);           // clamped at wmax
}

TEST(DenseConnection, LearningToggle) {
    util::Rng rng(3);
    DenseConnection conn(1, 1, test_params(), 0.0f, rng);
    conn.weights().fill(0.5f);
    conn.set_learning(false);
    conn.learn({}, std::vector<std::uint8_t>{1});
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});
    EXPECT_FLOAT_EQ(conn.weights()(0, 0), 0.5f);
    EXPECT_FALSE(conn.learning_enabled());
}

TEST(DenseConnection, TracesDecayAndReset) {
    util::Rng rng(3);
    DenseConnection conn(1, 1, test_params(), 0.0f, rng);
    conn.weights().fill(0.5f);
    conn.learn({}, std::vector<std::uint8_t>{1});  // post trace = 1
    // Let the trace decay for many steps, then a pre event: small change.
    for (int step = 0; step < 200; ++step) conn.learn({}, std::vector<std::uint8_t>{0});
    const float w_before = conn.weights()(0, 0);
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});
    EXPECT_NEAR(conn.weights()(0, 0), w_before, 1e-5);

    conn.weights().fill(0.5f);
    conn.reset_traces();  // clear the pre trace left by the first phase
    conn.learn({}, std::vector<std::uint8_t>{1});  // post spike, no pre trace
    EXPECT_FLOAT_EQ(conn.weights()(0, 0), 0.5f);   // nothing to potentiate
    conn.reset_traces();
    conn.learn(std::vector<std::uint32_t>{0}, std::vector<std::uint8_t>{0});
    EXPECT_FLOAT_EQ(conn.weights()(0, 0), 0.5f);  // trace cleared -> no change
}

TEST(DenseConnection, NormalizePreservesBudget) {
    util::Rng rng(3);
    DenseConnection conn(4, 2, test_params(), 3.0f, rng);
    conn.weights()(0, 0) = 0.9f;
    conn.normalize();
    EXPECT_NEAR(conn.weights().column_sum(0), 3.0f, 1e-4);
    EXPECT_NEAR(conn.weights().column_sum(1), 3.0f, 1e-4);
}

TEST(OneToOneConnection, DeliversOnlyToPartner) {
    OneToOneConnection conn(3, 22.5f);
    std::vector<float> out(3, 0.0f);
    conn.propagate(std::vector<std::uint8_t>{0, 1, 0}, out);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 22.5f);
    EXPECT_FLOAT_EQ(out[2], 0.0f);
    EXPECT_THROW(conn.propagate(std::vector<std::uint8_t>{1}, out),
                 std::invalid_argument);
}

TEST(LateralInhibition, AllButSelf) {
    LateralInhibitionConnection conn(3, -10.0f);
    std::vector<float> out(3, 0.0f);
    conn.propagate(std::vector<std::uint8_t>{1, 0, 1}, out);
    EXPECT_FLOAT_EQ(out[0], -10.0f);  // sees the other spike only
    EXPECT_FLOAT_EQ(out[1], -20.0f);  // sees both
    EXPECT_FLOAT_EQ(out[2], -10.0f);
}

TEST(LateralInhibition, NoSpikesNoEffect) {
    LateralInhibitionConnection conn(4, -10.0f);
    std::vector<float> out(4, 1.0f);
    conn.propagate(std::vector<std::uint8_t>{0, 0, 0, 0}, out);
    for (const float x : out) EXPECT_FLOAT_EQ(x, 1.0f);
}

/// Property: the O(n) aggregated lateral inhibition equals the naive
/// all-pairs implementation for random spike patterns.
class LateralEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LateralEquivalence, MatchesNaive) {
    util::Rng rng(GetParam());
    const std::size_t n = 37;
    LateralInhibitionConnection conn(n, -7.5f);
    std::vector<std::uint8_t> spiked(n);
    for (auto& s : spiked) s = rng.bernoulli(0.3);

    std::vector<float> fast(n, 0.0f);
    conn.propagate(spiked, fast);

    std::vector<float> naive(n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j && spiked[j]) naive[i] += -7.5f;
        }
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(fast[i], naive[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Patterns, LateralEquivalence,
                         ::testing::Values(1u, 2u, 3u, 17u, 255u));

}  // namespace
}  // namespace snnfi::snn
