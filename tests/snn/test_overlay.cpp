// FaultOverlay semantics: bit-flip weight patches round-trip bit-exactly,
// composition is order-independent on distinct targets (the paper's
// combined attacks), last-writer-wins on conflicting targets, and every
// field kind expands into the runtime's fault state.
#include "snn/overlay.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "data/synthetic_digits.hpp"
#include "snn/model.hpp"
#include "snn/runtime.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 16;
    cfg.steps_per_sample = 100;
    return cfg;
}

TEST(FaultOverlay, BitFlipPatchRoundTripsBitExact) {
    const auto model = NetworkModel::random(tiny_config(), 5);

    FaultOverlay once;
    once.flip_weight_bit(9, 4, 30);
    NetworkRuntime flipped(model, once);
    EXPECT_NE(std::memcmp(&flipped.weight_row(9)[4], &model->weight_row(9)[4],
                          sizeof(float)),
              0);

    // Flipping the same bit twice restores the weight — and because the
    // restored row is bit-identical, the whole effective matrix matches
    // the model bit-for-bit.
    FaultOverlay twice = once;
    twice.flip_weight_bit(9, 4, 30);
    NetworkRuntime restored(model, twice);
    for (std::size_t pre = 0; pre < model->n_input(); ++pre) {
        const auto row = restored.weight_row(pre);
        EXPECT_EQ(std::memcmp(row.data(), model->weight_row(pre).data(),
                              row.size() * sizeof(float)),
                  0)
            << "row " << pre;
    }
}

TEST(FaultOverlay, CompositionOrderIndependentOnDistinctTargets) {
    // The paper's attack 5 combines a threshold shift with a driver-gain
    // change; the overlay composition must not care which lands first.
    std::vector<std::size_t> all(tiny_config().n_neurons);
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

    FaultOverlay threshold;
    threshold.shift_threshold_value(OverlayLayer::kExcitatory, all, -0.2f);
    threshold.shift_threshold_value(OverlayLayer::kInhibitory, all, -0.2f);
    FaultOverlay gain;
    gain.set_driver_gain(0.9f);

    const auto model = NetworkModel::random(tiny_config(), 17);
    util::Rng rng(1);
    const auto image = data::render_digit(2, rng, {});

    const auto run = [&](const FaultOverlay& overlay) {
        NetworkRuntime runtime(model, overlay);
        runtime.rng().reseed(0x5EED);
        return runtime.run_sample(image).exc_counts;
    };
    EXPECT_EQ(run(FaultOverlay::compose(threshold, gain)),
              run(FaultOverlay::compose(gain, threshold)));
}

TEST(FaultOverlay, LastWriterWinsOnConflictingTargets) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    const std::size_t mask[] = {2};
    FaultOverlay first;
    first.scale_threshold(OverlayLayer::kExcitatory, mask, 0.5f);
    FaultOverlay second;
    second.scale_threshold(OverlayLayer::kExcitatory, mask, 2.0f);

    NetworkRuntime forward(model, FaultOverlay::compose(first, second));
    EXPECT_FLOAT_EQ(forward.threshold_scale(OverlayLayer::kExcitatory, 2), 2.0f);
    NetworkRuntime reverse(model, FaultOverlay::compose(second, first));
    EXPECT_FLOAT_EQ(reverse.threshold_scale(OverlayLayer::kExcitatory, 2), 0.5f);
}

TEST(FaultOverlay, EveryFieldKindExpandsIntoRuntimeState) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    const std::size_t n2[] = {2};
    const std::size_t n3[] = {3};
    const std::size_t n4[] = {4};
    FaultOverlay overlay;
    overlay.set_driver_gain(1.25f)
        .scale_input_gain(OverlayLayer::kExcitatory, n2, 0.7f)
        .force_state(OverlayLayer::kInhibitory, n3, NeuronFault::kSaturated)
        .override_refractory(OverlayLayer::kExcitatory, n4, 9)
        .set_weight(1, 1, 0.33f);
    NetworkRuntime runtime(model, overlay);

    EXPECT_FLOAT_EQ(runtime.driver_gain(), 1.25f);
    EXPECT_FLOAT_EQ(runtime.input_gain(OverlayLayer::kExcitatory, 2), 0.7f);
    EXPECT_EQ(runtime.forced_state(OverlayLayer::kInhibitory, 3),
              NeuronFault::kSaturated);
    EXPECT_EQ(runtime.refractory_steps(OverlayLayer::kExcitatory, 4), 9);
    EXPECT_FLOAT_EQ(runtime.weight_row(1)[1], 0.33f);
    // Untouched neurons keep nominal state.
    EXPECT_EQ(runtime.forced_state(OverlayLayer::kInhibitory, 4),
              NeuronFault::kNominal);
    EXPECT_EQ(runtime.refractory_steps(OverlayLayer::kExcitatory, 3),
              tiny_config().excitatory.lif.refrac_steps);
}

TEST(FaultOverlay, Validation) {
    FaultOverlay overlay;
    const std::size_t mask[] = {1};
    EXPECT_THROW(overlay.override_refractory(OverlayLayer::kExcitatory, mask, -1),
                 std::invalid_argument);
    EXPECT_THROW(overlay.flip_weight_bit(0, 0, 32), std::invalid_argument);

    FaultOverlay out_of_range;
    const std::size_t bad[] = {999};
    out_of_range.force_state(OverlayLayer::kExcitatory, bad, NeuronFault::kDead);
    EXPECT_THROW(NetworkRuntime(NetworkModel::random(tiny_config(), 1),
                                out_of_range),
                 std::out_of_range);
}

TEST(FaultOverlay, EmptyAndDriverGainInspection) {
    FaultOverlay overlay;
    EXPECT_TRUE(overlay.empty());
    EXPECT_FALSE(overlay.has_driver_gain());
    overlay.set_driver_gain(0.8f);
    EXPECT_FALSE(overlay.empty());
    EXPECT_FLOAT_EQ(overlay.driver_gain(), 0.8f);
}

}  // namespace
}  // namespace snnfi::snn
