#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "snn/classifier.hpp"
#include "snn/network.hpp"
#include "snn/trainer.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 30;
    cfg.steps_per_sample = 150;
    return cfg;
}

TEST(Network, RunSampleProducesActivity) {
    DiehlCookNetwork network(tiny_config(), 7);
    util::Rng rng(1);
    const auto image = data::render_digit(3, rng, {});
    const SampleActivity activity = network.run_sample(image);
    EXPECT_EQ(activity.exc_counts.size(), 30u);
    EXPECT_GT(activity.total_exc_spikes, 0u);
}

TEST(Network, RejectsWrongImageSize) {
    DiehlCookNetwork network(tiny_config(), 7);
    EXPECT_THROW(network.run_sample(std::vector<float>(10, 0.5f)),
                 std::invalid_argument);
}

TEST(Network, DeterministicGivenSeed) {
    util::Rng rng(1);
    const auto image = data::render_digit(5, rng, {});
    DiehlCookNetwork a(tiny_config(), 99);
    DiehlCookNetwork b(tiny_config(), 99);
    const auto act_a = a.run_sample(image);
    const auto act_b = b.run_sample(image);
    EXPECT_EQ(act_a.exc_counts, act_b.exc_counts);
    EXPECT_EQ(act_a.total_inh_spikes, act_b.total_inh_spikes);
}

TEST(Network, DifferentSeedsDiffer) {
    util::Rng rng(1);
    const auto image = data::render_digit(5, rng, {});
    DiehlCookNetwork a(tiny_config(), 1);
    DiehlCookNetwork b(tiny_config(), 2);
    EXPECT_NE(a.run_sample(image).exc_counts, b.run_sample(image).exc_counts);
}

TEST(Network, DriverGainScalesActivity) {
    util::Rng rng(1);
    const auto image = data::render_digit(8, rng, {});
    DiehlCookNetwork boosted(tiny_config(), 7);
    DiehlCookNetwork cut(tiny_config(), 7);
    boosted.set_driver_gain(1.5f);
    cut.set_driver_gain(0.4f);
    EXPECT_GT(boosted.run_sample(image).total_exc_spikes,
              cut.run_sample(image).total_exc_spikes);
}

TEST(Network, ClearFaultsRestoresGain) {
    DiehlCookNetwork network(tiny_config(), 7);
    network.set_driver_gain(0.5f);
    network.clear_faults();
    EXPECT_FLOAT_EQ(network.driver_gain(), 1.0f);
}

TEST(Network, InhibitionSuppressesActivity) {
    util::Rng rng(1);
    const auto image = data::render_digit(0, rng, {});
    DiehlCookConfig with_inh = tiny_config();
    DiehlCookConfig no_inh = tiny_config();
    no_inh.inh_weight = 0.0f;
    DiehlCookNetwork inhibited(with_inh, 7);
    DiehlCookNetwork free_running(no_inh, 7);
    EXPECT_LT(inhibited.run_sample(image).total_exc_spikes,
              free_running.run_sample(image).total_exc_spikes);
}

TEST(Classifier, AssignAndPredictOnCraftedActivity) {
    ActivityClassifier classifier(4, 3);
    // Neurons 0,1 respond to class 0; neuron 2 to class 1; neuron 3 to 2.
    classifier.accumulate(std::vector<std::uint32_t>{9, 7, 0, 1}, 0);
    classifier.accumulate(std::vector<std::uint32_t>{0, 1, 8, 0}, 1);
    classifier.accumulate(std::vector<std::uint32_t>{1, 0, 0, 6}, 2);
    classifier.assign_labels();
    const auto assignments = classifier.assignments();
    EXPECT_EQ(assignments[0], 0u);
    EXPECT_EQ(assignments[1], 0u);
    EXPECT_EQ(assignments[2], 1u);
    EXPECT_EQ(assignments[3], 2u);
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{5, 4, 1, 0}), 0u);
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{0, 1, 9, 1}), 1u);
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{0, 0, 1, 7}), 2u);
}

TEST(Classifier, PredictNormalizesByAssignedCount) {
    ActivityClassifier classifier(3, 2);
    // Two neurons for class 0, one for class 1.
    classifier.accumulate(std::vector<std::uint32_t>{5, 5, 0}, 0);
    classifier.accumulate(std::vector<std::uint32_t>{0, 0, 5}, 1);
    classifier.assign_labels();
    // Activity 3+3 on class-0 neurons (mean 3) vs 4 on the class-1 neuron:
    // class 1 wins despite the lower total.
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{3, 3, 4}), 1u);
}

TEST(Classifier, Validation) {
    EXPECT_THROW(ActivityClassifier(0, 10), std::invalid_argument);
    ActivityClassifier classifier(2, 2);
    EXPECT_THROW(classifier.accumulate(std::vector<std::uint32_t>{1}, 0),
                 std::invalid_argument);
    EXPECT_THROW(classifier.accumulate(std::vector<std::uint32_t>{1, 2}, 5),
                 std::out_of_range);
    EXPECT_THROW(classifier.predict(std::vector<std::uint32_t>{1}),
                 std::invalid_argument);
}

TEST(Trainer, LearnsAboveChanceOnTinyProblem) {
    const auto dataset = data::make_synthetic_dataset(150, 11);
    DiehlCookNetwork network(tiny_config(), 7);
    Trainer trainer(network, /*eval_window=*/50);
    const TrainResult result = trainer.run(dataset);
    EXPECT_GT(result.retro_accuracy, 0.25);  // well above 10% chance
    EXPECT_GT(result.train_accuracy, 0.15);
    EXPECT_GT(result.total_exc_spikes, 0u);
}

TEST(Trainer, HeldOutEvaluation) {
    const auto train = data::make_synthetic_dataset(120, 11);
    const auto test = data::make_synthetic_dataset(40, 999);
    DiehlCookNetwork network(tiny_config(), 7);
    Trainer trainer(network, 40);
    const TrainResult result = trainer.run(train, &test);
    EXPECT_GE(result.test_accuracy, 0.0);
    EXPECT_LE(result.test_accuracy, 1.0);
    EXPECT_TRUE(network.learning_enabled());  // restored after eval
}

TEST(Trainer, DeterministicAccuracy) {
    const auto dataset = data::make_synthetic_dataset(80, 5);
    DiehlCookNetwork a(tiny_config(), 13);
    DiehlCookNetwork b(tiny_config(), 13);
    const auto res_a = Trainer(a, 40).run(dataset);
    const auto res_b = Trainer(b, 40).run(dataset);
    EXPECT_DOUBLE_EQ(res_a.train_accuracy, res_b.train_accuracy);
    EXPECT_DOUBLE_EQ(res_a.retro_accuracy, res_b.retro_accuracy);
    EXPECT_EQ(res_a.total_exc_spikes, res_b.total_exc_spikes);
}

TEST(Trainer, Validation) {
    DiehlCookNetwork network(tiny_config(), 7);
    Trainer trainer(network);
    Dataset empty;
    EXPECT_THROW(trainer.run(empty), std::invalid_argument);
    Dataset mismatched;
    mismatched.images.push_back(std::vector<float>(784, 0.1f));
    EXPECT_THROW(trainer.run(mismatched), std::invalid_argument);
}

TEST(Hook, CalledPerSample) {
    const auto dataset = data::make_synthetic_dataset(10, 5);
    DiehlCookNetwork network(tiny_config(), 7);
    Trainer trainer(network, 5);
    std::size_t calls = 0;
    trainer.run(dataset, nullptr, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 10u);
}

}  // namespace
}  // namespace snnfi::snn
