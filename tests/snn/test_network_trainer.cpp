// Network-level behaviour through the Model/Runtime API: activity,
// determinism, fault overlays, classifier semantics and the Trainer loop.
#include <gtest/gtest.h>

#include "data/synthetic_digits.hpp"
#include "snn/classifier.hpp"
#include "snn/model.hpp"
#include "snn/runtime.hpp"
#include "snn/trainer.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 30;
    cfg.steps_per_sample = 150;
    return cfg;
}

/// A learning replica over a fresh random model — the equivalent of the
/// historical mutable network's default state (STDP active).
NetworkRuntime learning_runtime(std::uint64_t seed, FaultOverlay overlay = {}) {
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), seed),
                           std::move(overlay));
    runtime.set_learning(true);
    return runtime;
}

TEST(Network, RunSampleProducesActivity) {
    auto runtime = learning_runtime(7);
    util::Rng rng(1);
    const auto image = data::render_digit(3, rng, {});
    const SampleActivity activity = runtime.run_sample(image);
    EXPECT_EQ(activity.exc_counts.size(), 30u);
    EXPECT_GT(activity.total_exc_spikes, 0u);
}

TEST(Network, RejectsWrongImageSize) {
    auto runtime = learning_runtime(7);
    EXPECT_THROW(runtime.run_sample(std::vector<float>(10, 0.5f)),
                 std::invalid_argument);
}

TEST(Network, DeterministicGivenSeed) {
    util::Rng rng(1);
    const auto image = data::render_digit(5, rng, {});
    auto a = learning_runtime(99);
    auto b = learning_runtime(99);
    const auto act_a = a.run_sample(image);
    const auto act_b = b.run_sample(image);
    EXPECT_EQ(act_a.exc_counts, act_b.exc_counts);
    EXPECT_EQ(act_a.total_inh_spikes, act_b.total_inh_spikes);
}

TEST(Network, DifferentSeedsDiffer) {
    util::Rng rng(1);
    const auto image = data::render_digit(5, rng, {});
    auto a = learning_runtime(1);
    auto b = learning_runtime(2);
    EXPECT_NE(a.run_sample(image).exc_counts, b.run_sample(image).exc_counts);
}

TEST(Network, DriverGainScalesActivity) {
    util::Rng rng(1);
    const auto image = data::render_digit(8, rng, {});
    auto boosted = learning_runtime(7, FaultOverlay{}.set_driver_gain(1.5f));
    auto cut = learning_runtime(7, FaultOverlay{}.set_driver_gain(0.4f));
    EXPECT_GT(boosted.run_sample(image).total_exc_spikes,
              cut.run_sample(image).total_exc_spikes);
}

TEST(Network, EmptyOverlayRestoresGain) {
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 7),
                           FaultOverlay{}.set_driver_gain(0.5f));
    EXPECT_FLOAT_EQ(runtime.driver_gain(), 0.5f);
    runtime.set_overlay(FaultOverlay{});
    EXPECT_FLOAT_EQ(runtime.driver_gain(), 1.0f);
}

TEST(Network, InhibitionSuppressesActivity) {
    util::Rng rng(1);
    const auto image = data::render_digit(0, rng, {});
    DiehlCookConfig no_inh = tiny_config();
    no_inh.inh_weight = 0.0f;
    NetworkRuntime inhibited(NetworkModel::random(tiny_config(), 7));
    NetworkRuntime free_running(NetworkModel::random(no_inh, 7));
    inhibited.set_learning(true);
    free_running.set_learning(true);
    EXPECT_LT(inhibited.run_sample(image).total_exc_spikes,
              free_running.run_sample(image).total_exc_spikes);
}

TEST(Classifier, AssignAndPredictOnCraftedActivity) {
    ActivityClassifier classifier(4, 3);
    // Neurons 0,1 respond to class 0; neuron 2 to class 1; neuron 3 to 2.
    classifier.accumulate(std::vector<std::uint32_t>{9, 7, 0, 1}, 0);
    classifier.accumulate(std::vector<std::uint32_t>{0, 1, 8, 0}, 1);
    classifier.accumulate(std::vector<std::uint32_t>{1, 0, 0, 6}, 2);
    classifier.assign_labels();
    const auto assignments = classifier.assignments();
    EXPECT_EQ(assignments[0], 0u);
    EXPECT_EQ(assignments[1], 0u);
    EXPECT_EQ(assignments[2], 1u);
    EXPECT_EQ(assignments[3], 2u);
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{5, 4, 1, 0}), 0u);
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{0, 1, 9, 1}), 1u);
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{0, 0, 1, 7}), 2u);
}

TEST(Classifier, PredictNormalizesByAssignedCount) {
    ActivityClassifier classifier(3, 2);
    // Two neurons for class 0, one for class 1.
    classifier.accumulate(std::vector<std::uint32_t>{5, 5, 0}, 0);
    classifier.accumulate(std::vector<std::uint32_t>{0, 0, 5}, 1);
    classifier.assign_labels();
    // Activity 3+3 on class-0 neurons (mean 3) vs 4 on the class-1 neuron:
    // class 1 wins despite the lower total.
    EXPECT_EQ(classifier.predict(std::vector<std::uint32_t>{3, 3, 4}), 1u);
}

TEST(Classifier, Validation) {
    EXPECT_THROW(ActivityClassifier(0, 10), std::invalid_argument);
    ActivityClassifier classifier(2, 2);
    EXPECT_THROW(classifier.accumulate(std::vector<std::uint32_t>{1}, 0),
                 std::invalid_argument);
    EXPECT_THROW(classifier.accumulate(std::vector<std::uint32_t>{1, 2}, 5),
                 std::out_of_range);
    EXPECT_THROW(classifier.predict(std::vector<std::uint32_t>{1}),
                 std::invalid_argument);
}

TEST(Trainer, LearnsAboveChanceOnTinyProblem) {
    const auto dataset = data::make_synthetic_dataset(150, 11);
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 7));
    Trainer trainer(runtime, /*eval_window=*/50);
    const TrainResult result = trainer.run(dataset);
    EXPECT_GT(result.retro_accuracy, 0.25);  // well above 10% chance
    EXPECT_GT(result.train_accuracy, 0.15);
    EXPECT_GT(result.total_exc_spikes, 0u);
}

TEST(Trainer, HeldOutEvaluation) {
    const auto train = data::make_synthetic_dataset(120, 11);
    const auto test = data::make_synthetic_dataset(40, 999);
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 7));
    Trainer trainer(runtime, 40);
    const TrainResult result = trainer.run(train, &test);
    EXPECT_GE(result.test_accuracy, 0.0);
    EXPECT_LE(result.test_accuracy, 1.0);
    EXPECT_TRUE(runtime.learning_enabled());  // restored after eval
}

TEST(Trainer, DeterministicAccuracy) {
    const auto dataset = data::make_synthetic_dataset(80, 5);
    NetworkRuntime a(NetworkModel::random(tiny_config(), 13));
    NetworkRuntime b(NetworkModel::random(tiny_config(), 13));
    const auto res_a = Trainer(a, 40).run(dataset);
    const auto res_b = Trainer(b, 40).run(dataset);
    EXPECT_DOUBLE_EQ(res_a.train_accuracy, res_b.train_accuracy);
    EXPECT_DOUBLE_EQ(res_a.retro_accuracy, res_b.retro_accuracy);
    EXPECT_EQ(res_a.total_exc_spikes, res_b.total_exc_spikes);
}

TEST(Trainer, Validation) {
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 7));
    Trainer trainer(runtime);
    Dataset empty;
    EXPECT_THROW(trainer.run(empty), std::invalid_argument);
    Dataset mismatched;
    mismatched.images.push_back(std::vector<float>(784, 0.1f));
    EXPECT_THROW(trainer.run(mismatched), std::invalid_argument);
}

TEST(Hook, CalledPerSample) {
    const auto dataset = data::make_synthetic_dataset(10, 5);
    NetworkRuntime runtime(NetworkModel::random(tiny_config(), 7));
    Trainer trainer(runtime, 5);
    std::size_t calls = 0;
    trainer.run(dataset, nullptr, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 10u);
}

}  // namespace
}  // namespace snnfi::snn
