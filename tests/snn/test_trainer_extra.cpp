// Trainer metric semantics and fault-interaction edge cases (Model/Runtime).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/synthetic_digits.hpp"
#include "snn/runtime.hpp"
#include "snn/trainer.hpp"

namespace snnfi::snn {
namespace {

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 30;
    cfg.steps_per_sample = 120;
    return cfg;
}

NetworkRuntime fresh_runtime(std::uint64_t seed, FaultOverlay overlay = {}) {
    return NetworkRuntime(NetworkModel::random(tiny_config(), seed),
                          std::move(overlay));
}

TEST(TrainerMetrics, WindowLargerThanDatasetScoresNothingOnline) {
    const auto dataset = data::make_synthetic_dataset(30, 5);
    auto runtime = fresh_runtime(7);
    Trainer trainer(runtime, /*eval_window=*/100);
    const auto result = trainer.run(dataset);
    EXPECT_DOUBLE_EQ(result.train_accuracy, 0.0);  // no window completed
    EXPECT_GT(result.retro_accuracy, 0.0);         // retro still defined
}

TEST(TrainerMetrics, OnlineScoresExactlyAfterFirstWindow) {
    const auto dataset = data::make_synthetic_dataset(60, 5);
    auto runtime = fresh_runtime(7);
    Trainer trainer(runtime, /*eval_window=*/20);
    // 60 samples, window 20: samples 20..59 are scored (40 predictions).
    const auto result = trainer.run(dataset);
    // Accuracy is a multiple of 1/40.
    const double scaled = result.train_accuracy * 40.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
}

TEST(TrainerMetrics, ZeroWindowRejected) {
    const auto dataset = data::make_synthetic_dataset(10, 5);
    auto runtime = fresh_runtime(7);
    Trainer trainer(runtime, 0);
    EXPECT_THROW(trainer.run(dataset), std::invalid_argument);
}

TEST(TrainerFaults, ThresholdFaultChangesTrajectory) {
    const auto dataset = data::make_synthetic_dataset(60, 5);
    std::vector<std::size_t> all(30);
    std::iota(all.begin(), all.end(), 0u);
    FaultOverlay fault;
    fault.shift_threshold_value(OverlayLayer::kInhibitory, all, -0.2f);
    auto clean = fresh_runtime(7);
    auto faulted = fresh_runtime(7, fault);
    const auto clean_result = Trainer(clean, 20).run(dataset);
    const auto fault_result = Trainer(faulted, 20).run(dataset);
    EXPECT_NE(clean_result.total_exc_spikes, fault_result.total_exc_spikes);
    // Disabled inhibition (value semantics, -20% on IL) raises activity.
    EXPECT_GT(fault_result.total_exc_spikes, clean_result.total_exc_spikes);
}

TEST(TrainerFaults, DriverGainPersistsAcrossSamples) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    auto boosted = fresh_runtime(7, FaultOverlay{}.set_driver_gain(1.5f));
    auto nominal = fresh_runtime(7);
    const auto boosted_result = Trainer(boosted, 10).run(dataset);
    const auto nominal_result = Trainer(nominal, 10).run(dataset);
    EXPECT_GT(boosted_result.total_exc_spikes, nominal_result.total_exc_spikes);
    EXPECT_FLOAT_EQ(boosted.driver_gain(), 1.5f);  // unchanged by training
}

TEST(TrainerFaults, LearningFrozenRuntimeKeepsWeights) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    auto runtime = fresh_runtime(7);
    // Learning never enabled: inference path over the shared model rows.
    const auto model = runtime.model_ptr();
    for (const auto& image : dataset.images) (void)runtime.run_sample(image);
    for (std::size_t pre = 0; pre < model->n_input(); ++pre) {
        // No copy-on-write rows were materialised: every row still aliases
        // the immutable model.
        ASSERT_EQ(runtime.weight_row(pre).data(), model->weight_row(pre).data());
    }
}

TEST(TrainerFaults, TrainingMovesWeights) {
    const auto dataset = data::make_synthetic_dataset(20, 5);
    const auto model = NetworkModel::random(tiny_config(), 7);
    NetworkRuntime runtime(model);
    Trainer(runtime, 10).run(dataset);
    const auto trained = runtime.freeze();
    double total_change = 0.0;
    for (std::size_t r = 0; r < model->input_weights().rows(); ++r)
        for (std::size_t c = 0; c < model->input_weights().cols(); ++c)
            total_change += std::abs(trained->input_weights()(r, c) -
                                     model->input_weights()(r, c));
    EXPECT_GT(total_change, 0.1);
}

TEST(TrainerFaults, NormalizationHoldsDuringTraining) {
    const auto dataset = data::make_synthetic_dataset(15, 5);
    const DiehlCookConfig cfg = tiny_config();
    NetworkRuntime runtime(NetworkModel::random(cfg, 7));
    Trainer(runtime, 5).run(dataset);
    const auto trained = runtime.freeze();
    for (std::size_t j = 0; j < cfg.n_neurons; ++j)
        EXPECT_NEAR(trained->input_weights().column_sum(j), cfg.norm_total,
                    cfg.norm_total * 0.01)
            << "column " << j;
}

/// Property: accuracy is invariant to the data seed only through quality,
/// not determinism — but for a FIXED seed pair everything reproduces.
class TrainerDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrainerDeterminism, ExactReproduction) {
    const auto dataset = data::make_synthetic_dataset(40, GetParam());
    auto a = fresh_runtime(GetParam() + 1);
    auto b = fresh_runtime(GetParam() + 1);
    const auto ra = Trainer(a, 20).run(dataset);
    const auto rb = Trainer(b, 20).run(dataset);
    EXPECT_DOUBLE_EQ(ra.train_accuracy, rb.train_accuracy);
    EXPECT_EQ(ra.total_exc_spikes, rb.total_exc_spikes);
    EXPECT_EQ(ra.total_inh_spikes, rb.total_inh_spikes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainerDeterminism, ::testing::Values(3u, 9u, 27u));

}  // namespace
}  // namespace snnfi::snn
