// Kernel-layer equivalence: the blocked/predicated hot-path kernels must
// be BIT-identical to their naive scalar references — across shapes that
// exercise every unroll tail and padding edge, across fault
// configurations, and end-to-end through NetworkRuntime/BatchRunner
// (fast path vs scalar path, merge-join vs binary-search adopt_drive).
// Plus the steady-state no-allocation guarantee of the sample loop.
#include "snn/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "snn/runtime.hpp"
#include "snn/tensor.hpp"
#include "util/random.hpp"

namespace {

// --- allocation counting (used by the steady-state test) -----------------
// Replacing global operator new in the test binary counts every heap
// allocation made by the code under test. Counting is always on; the test
// reads the counter around the hot loop.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) - 1) /
                                         static_cast<std::size_t>(align) *
                                         static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace snnfi::snn {

/// White-box access to NetworkRuntime internals for the adopt_drive and
/// drive-aliasing checks (friend of NetworkRuntime).
struct RuntimeTestPeer {
    static void adopt_drive(NetworkRuntime& runtime, std::span<const float> base,
                            std::span<const std::uint32_t> active) {
        runtime.adopt_drive(base, active);
    }
    static const float* drive(const NetworkRuntime& runtime) {
        return runtime.drive_;
    }
    /// Pins the runtime to the full scalar fault-aware loop, bypassing
    /// both the fast kernel and the hybrid patch redo — the reference
    /// semantics the other paths must reproduce bit for bit.
    static void force_scalar(NetworkRuntime& runtime) {
        runtime.force_scalar_ = true;
    }
    static std::size_t exc_patch_size(const NetworkRuntime& runtime) {
        return runtime.exc_patch_.size();
    }
    static std::size_t inh_patch_size(const NetworkRuntime& runtime) {
        return runtime.inh_patch_.size();
    }
    static std::vector<std::tuple<std::uint32_t, std::uint32_t, float>> deltas(
        const NetworkRuntime& runtime) {
        std::vector<std::tuple<std::uint32_t, std::uint32_t, float>> out;
        for (const auto& cell : runtime.cell_deltas_)
            out.emplace_back(cell.pre, cell.post, cell.delta);
        return out;
    }
};

namespace {

namespace kernels = snn::kernels;

DiehlCookConfig tiny_config() {
    DiehlCookConfig cfg;
    cfg.n_neurons = 24;
    cfg.steps_per_sample = 120;
    return cfg;
}

std::vector<float> random_image(util::Rng& rng, std::size_t n) {
    std::vector<float> image(n);
    for (float& x : image) x = static_cast<float>(rng.uniform());
    return image;
}

bool same_bits(std::span<const float> a, std::span<const float> b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// --- drive accumulation ---------------------------------------------------

TEST(Kernels, PaddedSizeRoundsUpToStride) {
    EXPECT_EQ(kernels::padded_size(0), 0u);
    EXPECT_EQ(kernels::padded_size(1), kernels::kPadFloats);
    EXPECT_EQ(kernels::padded_size(16), 16u);
    EXPECT_EQ(kernels::padded_size(17), 32u);
    EXPECT_EQ(kernels::padded_size(100), 112u);
}

TEST(Kernels, MatrixPaddingLanesStayZero) {
    Matrix m(3, 13, 0.5f);
    m.fill(2.0f);
    m.scale_column(4, 3.0f);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const auto padded = m.padded_row(r);
        for (std::size_t j = m.cols(); j < padded.size(); ++j)
            EXPECT_EQ(padded[j], 0.0f) << "row " << r << " lane " << j;
    }
}

/// Blocked accumulation must be bit-identical to the one-row-at-a-time
/// reference for every unroll tail (active sizes 0..9) and for logical
/// widths off the SIMD/padding grid.
TEST(Kernels, BlockedAccumulationBitIdenticalToReference) {
    util::Rng rng(41);
    const std::size_t n_pre = 37;
    for (const std::size_t n : {1u, 3u, 13u, 16u, 17u, 33u, 48u, 100u}) {
        Matrix weights(n_pre, n);
        for (std::size_t r = 0; r < n_pre; ++r) {
            for (float& w : weights.row(r))
                w = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
        std::vector<const float*> rows(n_pre);
        for (std::size_t r = 0; r < n_pre; ++r)
            rows[r] = weights.padded_row(r).data();
        const std::size_t padded = kernels::padded_size(n);
        for (std::size_t n_active = 0; n_active <= 9; ++n_active) {
            std::vector<std::uint32_t> active;
            for (std::uint32_t r = 0; r < n_pre; ++r) {
                if (rng.uniform() < static_cast<double>(n_active) / n_pre)
                    active.push_back(r);
            }
            AlignedVector blocked(padded, 0.25f);
            AlignedVector strided(padded, 0.25f);
            std::vector<float> reference(n, 0.25f);
            kernels::accumulate_rows(rows.data(), active, blocked.data(), padded);
            kernels::accumulate_rows(weights.data(), weights.stride(), active,
                                     strided.data(), padded);
            kernels::accumulate_rows_reference(rows.data(), active,
                                               reference.data(), n);
            ASSERT_TRUE(same_bits({blocked.data(), n}, reference))
                << "rows form, n=" << n << " active=" << active.size();
            ASSERT_TRUE(same_bits({strided.data(), n}, reference))
                << "strided form, n=" << n << " active=" << active.size();
        }
    }
}

// --- neuron update: fast path vs scalar transliteration -------------------

struct ExcState {
    std::vector<float> v, theta;
    std::vector<std::int32_t> refrac;
    std::vector<std::uint8_t> spiked;
};

/// Straight transliteration of the scalar excitatory loop in
/// NetworkRuntime::advance_step with all per-neuron fault values at
/// identity — the semantics the fast kernel must reproduce bit-for-bit.
std::size_t exc_reference_step(const kernels::ExcParams& p, const float* drive,
                               const std::uint8_t* inh_spiked,
                               std::size_t inh_total, ExcState& st) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < st.v.size(); ++i) {
        float x = drive[i];
        if (p.gain_active) x *= p.driver_gain;
        if (inh_total > 0) {
            x += p.w_inh * (static_cast<float>(inh_total) -
                            static_cast<float>(inh_spiked[i]));
        }
        st.theta[i] *= p.theta_decay;
        std::uint8_t spike = 0;
        if (st.refrac[i] > 0) {
            --st.refrac[i];
            st.v[i] = p.v_reset;
        } else {
            float v = p.v_rest + p.decay * (st.v[i] - p.v_rest);
            v += 1.0f * x;  // identity input gain, like the scalar path
            const float threshold = p.thresh_base + st.theta[i];
            if (v >= threshold) {
                spike = 1;
                v = p.v_reset;
                st.refrac[i] = p.refrac_steps;
                st.theta[i] += p.theta_plus;
            }
            st.v[i] = v;
        }
        st.spiked[i] = spike;
        count += spike;
    }
    return count;
}

TEST(Kernels, ExcFastStepBitIdenticalToScalarReference) {
    util::Rng rng(97);
    for (const bool gain_active : {false, true}) {
        for (const std::size_t n : {5u, 16u, 24u, 33u}) {
            kernels::ExcParams p;
            p.v_rest = -65.0f;
            p.v_reset = -60.0f;
            p.decay = 0.99f;
            p.thresh_base = p.v_rest + (-52.0f - p.v_rest);
            p.theta_decay = 0.999999f;
            p.theta_plus = 0.05f;
            p.refrac_steps = 5;
            p.driver_gain = gain_active ? 0.7f : 1.0f;
            p.gain_active = gain_active;
            p.w_inh = -17.5f;
            ExcState fast{std::vector<float>(n, p.v_rest),
                          std::vector<float>(n, 0.0f),
                          std::vector<std::int32_t>(n, 0),
                          std::vector<std::uint8_t>(n, 0)};
            ExcState ref = fast;
            std::vector<std::uint8_t> inh_spiked(n, 0);
            std::vector<float> drive(n, 0.0f);
            for (std::size_t step = 0; step < 200; ++step) {
                for (float& d : drive)
                    d = static_cast<float>(rng.uniform(0.0, 30.0));
                std::size_t inh_total = 0;
                for (auto& s : inh_spiked) {
                    s = rng.uniform() < 0.2 ? 1 : 0;
                    inh_total += s;
                }
                const std::size_t fast_count = kernels::exc_fast_step(
                    p, drive.data(), inh_spiked.data(), inh_total,
                    fast.v.data(), fast.refrac.data(), fast.theta.data(),
                    fast.spiked.data(), n);
                const std::size_t ref_count = exc_reference_step(
                    p, drive.data(), inh_spiked.data(), inh_total, ref);
                ASSERT_EQ(fast_count, ref_count) << "step " << step;
                ASSERT_TRUE(same_bits(fast.v, ref.v)) << "step " << step;
                ASSERT_TRUE(same_bits(fast.theta, ref.theta)) << "step " << step;
                ASSERT_EQ(fast.refrac, ref.refrac) << "step " << step;
                ASSERT_EQ(fast.spiked, ref.spiked) << "step " << step;
            }
        }
    }
}

TEST(Kernels, InhFastStepBitIdenticalToScalarReference) {
    util::Rng rng(131);
    const std::size_t n = 24;
    kernels::InhParams p;
    p.v_rest = -60.0f;
    p.v_reset = -45.0f;
    p.decay = 0.9f;
    p.thresh_base = p.v_rest + (-40.0f - p.v_rest);
    p.refrac_steps = 2;
    p.w_exc = 22.5f;
    std::vector<float> v_fast(n, p.v_rest), v_ref(n, p.v_rest);
    std::vector<std::int32_t> r_fast(n, 0), r_ref(n, 0);
    std::vector<std::uint8_t> s_fast(n, 0), s_ref(n, 0), exc_spiked(n, 0);
    for (std::size_t step = 0; step < 200; ++step) {
        for (auto& s : exc_spiked) s = rng.uniform() < 0.3 ? 1 : 0;
        const std::size_t fast_count = kernels::inh_fast_step(
            p, exc_spiked.data(), v_fast.data(), r_fast.data(), s_fast.data(), n);
        // Scalar reference: the fault-aware loop at identity fault state.
        std::size_t ref_count = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const float x = exc_spiked[i] ? p.w_exc : 0.0f;
            std::uint8_t spike = 0;
            if (r_ref[i] > 0) {
                --r_ref[i];
                v_ref[i] = p.v_reset;
            } else {
                float vi = p.v_rest + p.decay * (v_ref[i] - p.v_rest);
                vi += 1.0f * x;
                if (vi >= p.thresh_base) {
                    spike = 1;
                    vi = p.v_reset;
                    r_ref[i] = p.refrac_steps;
                }
                v_ref[i] = vi;
            }
            s_ref[i] = spike;
            ref_count += spike;
        }
        ASSERT_EQ(fast_count, ref_count) << "step " << step;
        ASSERT_TRUE(same_bits(v_fast, v_ref)) << "step " << step;
        ASSERT_EQ(r_fast, r_ref) << "step " << step;
        ASSERT_EQ(s_fast, s_ref) << "step " << step;
    }
}

// --- end-to-end: fast path vs scalar path through the runtime -------------

/// A numerically-identity neuron op (gain 1.0) drops the runtime to the
/// scalar fault-aware path without changing semantics; a clean runtime
/// takes the fast path. Same seed, same images: every observable must be
/// bit-identical.
TEST(Kernels, RuntimeFastAndScalarPathsBitIdentical) {
    const auto model = NetworkModel::random(tiny_config(), 21);
    NetworkRuntime fast(model);
    FaultOverlay identity;
    const std::size_t targets[] = {0};
    identity.scale_input_gain(OverlayLayer::kExcitatory, targets, 1.0f);
    identity.scale_input_gain(OverlayLayer::kInhibitory, targets, 1.0f);
    NetworkRuntime scalar(model, identity);
    RuntimeTestPeer::force_scalar(scalar);
    EXPECT_TRUE(fast.fast_path_active());
    EXPECT_FALSE(scalar.fast_path_active());

    fast.rng().reseed(7);
    scalar.rng().reseed(7);
    util::Rng image_rng(55);
    for (std::size_t sample = 0; sample < 4; ++sample) {
        const auto image = random_image(image_rng, model->config().n_input);
        const SampleActivity a = fast.run_sample(image);
        const SampleActivity b = scalar.run_sample(image);
        ASSERT_EQ(a.exc_counts, b.exc_counts) << "sample " << sample;
        ASSERT_EQ(a.total_exc_spikes, b.total_exc_spikes) << "sample " << sample;
        ASSERT_EQ(a.total_inh_spikes, b.total_inh_spikes) << "sample " << sample;
        ASSERT_TRUE(same_bits(fast.exc_theta(), scalar.exc_theta()))
            << "sample " << sample;
    }
}

/// Property: a runtime carrying real per-neuron faults (forced states,
/// gains, threshold scale, refractory override) takes the hybrid path —
/// vector kernel plus an exact scalar redo of the overridden neurons —
/// and must match the full scalar fault-aware loop bit for bit.
TEST(Kernels, HybridPatchPathBitIdenticalToScalarLoop) {
    const auto model = NetworkModel::random(tiny_config(), 29);
    FaultOverlay faults;
    const std::size_t dead[] = {1};
    const std::size_t saturated[] = {4};
    const std::size_t gained[] = {2};
    const std::size_t scaled[] = {0};
    const std::size_t refrac[] = {3};
    faults.force_state(OverlayLayer::kExcitatory, dead, NeuronFault::kDead);
    faults.force_state(OverlayLayer::kExcitatory, saturated,
                       NeuronFault::kSaturated);
    faults.scale_input_gain(OverlayLayer::kExcitatory, gained, 0.5f);
    faults.scale_driver_gain(gained, 0.25f);
    faults.scale_threshold(OverlayLayer::kInhibitory, scaled, 1.3f);
    faults.override_refractory(OverlayLayer::kInhibitory, refrac, 9.0f);

    NetworkRuntime hybrid(model, faults);
    NetworkRuntime scalar(model, faults);
    RuntimeTestPeer::force_scalar(scalar);
    EXPECT_FALSE(hybrid.fast_path_active());
    // Patch lists small enough for the hybrid (<= n/8 of 24 per layer).
    EXPECT_EQ(RuntimeTestPeer::exc_patch_size(hybrid), 3u);
    EXPECT_EQ(RuntimeTestPeer::inh_patch_size(hybrid), 2u);

    hybrid.rng().reseed(17);
    scalar.rng().reseed(17);
    util::Rng image_rng(63);
    for (std::size_t sample = 0; sample < 4; ++sample) {
        const auto image = random_image(image_rng, model->config().n_input);
        const SampleActivity a = hybrid.run_sample(image);
        const SampleActivity b = scalar.run_sample(image);
        ASSERT_EQ(a.exc_counts, b.exc_counts) << "sample " << sample;
        ASSERT_EQ(a.total_exc_spikes, b.total_exc_spikes) << "sample " << sample;
        ASSERT_EQ(a.total_inh_spikes, b.total_inh_spikes) << "sample " << sample;
        ASSERT_TRUE(same_bits(hybrid.exc_theta(), scalar.exc_theta()))
            << "sample " << sample;
    }
}

/// Same check through the BatchRunner: a clean member (aliases the shared
/// base drive, fast kernels) against an identity-op member (pinned to the
/// scalar loop) in ONE batch over one shared Poisson stream.
TEST(Kernels, BatchMembersFastAndScalarPathsBitIdentical) {
    const auto model = NetworkModel::random(tiny_config(), 23);
    NetworkRuntime clean(model);
    FaultOverlay identity;
    const std::size_t targets[] = {1, 3};
    identity.scale_input_gain(OverlayLayer::kExcitatory, targets, 1.0f);
    NetworkRuntime scalar(model, identity);
    RuntimeTestPeer::force_scalar(scalar);
    BatchRunner batch(*model, {&clean, &scalar});
    util::Rng rng(91);
    util::Rng image_rng(92);
    std::vector<SampleActivity> activities(batch.size());
    for (std::size_t sample = 0; sample < 4; ++sample) {
        const auto image = random_image(image_rng, model->config().n_input);
        batch.run_sample_into(image, rng, activities);
        ASSERT_EQ(activities[0].exc_counts, activities[1].exc_counts);
        ASSERT_EQ(activities[0].total_exc_spikes, activities[1].total_exc_spikes);
        ASSERT_EQ(activities[0].total_inh_spikes, activities[1].total_inh_spikes);
    }
}

// --- adopt_drive: aliasing + merge-join ------------------------------------

TEST(Kernels, AdoptDriveAliasesSharedBaseWhenNoDeltas) {
    const auto model = NetworkModel::random(tiny_config(), 3);
    NetworkRuntime runtime(model);
    const std::size_t padded = kernels::padded_size(model->n_neurons());
    AlignedVector base(padded, 1.5f);
    const std::vector<std::uint32_t> active = {0, 5};
    RuntimeTestPeer::adopt_drive(runtime, {base.data(), base.size()}, active);
    EXPECT_EQ(RuntimeTestPeer::drive(runtime), base.data())
        << "clean runtime must alias the shared buffer, not copy it";
}

/// Many-delta overlay (several deltas per row, rows out of order): the
/// merge-join must reproduce the old per-delta binary_search drive
/// bit-for-bit, and the delta table must come out sorted by (pre, post).
TEST(Kernels, AdoptDriveMergeJoinMatchesBinarySearchReference) {
    const auto model = NetworkModel::random(tiny_config(), 5);
    const std::size_t n = model->n_neurons();
    FaultOverlay overlay;
    util::Rng rng(17);
    // Insertion order deliberately scrambled; duplicate (pre, post) hits
    // collapse to one delta (last op wins, matching first-touch order).
    for (const std::uint32_t pre : {40u, 3u, 770u, 3u, 128u, 40u, 501u}) {
        for (std::size_t k = 0; k < 5; ++k) {
            overlay.set_weight(pre, (pre + 7 * k) % n,
                               static_cast<float>(rng.uniform(-0.5, 0.5)));
        }
    }
    NetworkRuntime runtime(model, overlay);
    const auto deltas = RuntimeTestPeer::deltas(runtime);
    ASSERT_FALSE(deltas.empty());
    ASSERT_TRUE(std::is_sorted(deltas.begin(), deltas.end(),
                               [](const auto& a, const auto& b) {
                                   return std::get<0>(a) != std::get<0>(b)
                                              ? std::get<0>(a) < std::get<0>(b)
                                              : std::get<1>(a) < std::get<1>(b);
                               }));

    const std::size_t padded = kernels::padded_size(n);
    util::Rng drive_rng(19);
    for (std::size_t trial = 0; trial < 20; ++trial) {
        AlignedVector base(padded, 0.0f);
        for (std::size_t j = 0; j < n; ++j)
            base[j] = static_cast<float>(drive_rng.uniform(0.0, 5.0));
        std::vector<std::uint32_t> active;
        for (std::uint32_t pre = 0; pre < model->n_input(); ++pre) {
            if (drive_rng.uniform() < 0.1) active.push_back(pre);
        }
        // Reference: the pre-merge-join implementation.
        std::vector<float> expected(base.begin(), base.begin() +
                                                      static_cast<long>(n));
        for (const auto& [pre, post, delta] : deltas) {
            if (std::binary_search(active.begin(), active.end(), pre))
                expected[post] += delta;
        }
        RuntimeTestPeer::adopt_drive(runtime, {base.data(), base.size()}, active);
        ASSERT_TRUE(same_bits({RuntimeTestPeer::drive(runtime), n}, expected))
            << "trial " << trial;
    }
}

// --- steady-state allocation freedom ---------------------------------------

TEST(Kernels, SampleLoopIsAllocationFreeAtSteadyState) {
    const auto model = NetworkModel::random(tiny_config(), 29);
    NetworkRuntime standalone(model);
    FaultOverlay patched;
    patched.set_weight(10, 2, 0.9f).set_weight(300, 5, 0.1f);
    NetworkRuntime member_clean(model);
    NetworkRuntime member_patched(model, patched);
    BatchRunner batch(*model, {&member_clean, &member_patched});

    util::Rng image_rng(31);
    const auto image_a = random_image(image_rng, model->config().n_input);
    const auto image_b = random_image(image_rng, model->config().n_input);
    SampleActivity activity;
    std::vector<SampleActivity> activities(batch.size());
    util::Rng batch_rng(33);
    // Warm-up: sizes the activity records and the reserved worklists.
    standalone.run_sample_into(image_a, activity);
    batch.run_sample_into(image_a, batch_rng, activities);

    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (std::size_t rep = 0; rep < 3; ++rep) {
        standalone.run_sample_into(image_a, activity);
        standalone.run_sample_into(image_b, activity);
        batch.run_sample_into(image_a, batch_rng, activities);
        batch.run_sample_into(image_b, batch_rng, activities);
    }
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "the sample loop allocated " << (after - before)
        << " time(s) at steady state";
}

}  // namespace
}  // namespace snnfi::snn
