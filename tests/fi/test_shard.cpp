// Sharded-campaign tests: deterministic partitioning, JSONL round-trips,
// worker + merge bit-identity against a single-process run, and
// interrupt/resume recovery.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/session.hpp"
#include "fi/campaign.hpp"
#include "fi/catalog.hpp"
#include "fi/shard.hpp"

namespace snnfi::fi {
namespace {

namespace fs = std::filesystem;

core::RunOptions quick_options() {
    core::RunOptions options;
    options.quick = true;
    return options;
}

class ShardTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("snnfi_shard_") + info->name());
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

TEST(ShardCells, RoundRobinPartitionIsDisjointAndComplete) {
    std::vector<char> seen(11, 0);
    for (std::size_t shard = 0; shard < 3; ++shard) {
        for (const std::size_t c : shard_cells(11, 3, shard)) {
            ASSERT_LT(c, 11u);
            EXPECT_FALSE(seen[c]) << "cell " << c << " assigned twice";
            seen[c] = 1;
        }
    }
    for (std::size_t c = 0; c < 11; ++c) EXPECT_TRUE(seen[c]);
    // Round-robin: consecutive (expensive) cells spread across shards.
    EXPECT_EQ(shard_cells(11, 3, 0), (std::vector<std::size_t>{0, 3, 6, 9}));
    EXPECT_THROW(shard_cells(4, 0, 0), std::invalid_argument);
    EXPECT_THROW(shard_cells(4, 2, 2), std::invalid_argument);
}

TEST(ShardJsonl, CellRoundTripsBitExact) {
    CellResult cell;
    cell.plan_index = 17;
    cell.model = "vdd_glitch";
    cell.site.kind = SiteKind::kParameter;
    cell.site.layer = attack::TargetLayer::kExcitatory;
    cell.site.neuron = 3;
    cell.site.pre = 1;
    cell.site.post = 2;
    cell.label = "rect:d0.8:o0.25:w0.25";
    cell.footprint = "strat:0.25@7";
    cell.severity = 0.8;
    cell.replicas = 3;
    cell.accuracy_pct = 100.0 / 3.0;  // not exactly representable
    cell.drop_pct = 12.345678901234567;
    cell.ci_halfwidth_pct = 1.0 / 7.0;
    cell.critical = true;
    cell.early_stopped = false;
    cell.trained = true;
    cell.scheduled = true;

    const std::string line = cell_to_jsonl(cell, 200.0 / 3.0);
    const auto record = cell_from_jsonl(line);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->baseline_pct, 200.0 / 3.0);
    const CellResult& back = record->cell;
    EXPECT_EQ(back.plan_index, cell.plan_index);
    EXPECT_EQ(back.model, cell.model);
    EXPECT_EQ(back.site.kind, cell.site.kind);
    EXPECT_EQ(back.site.layer, cell.site.layer);
    EXPECT_EQ(back.site.neuron, cell.site.neuron);
    EXPECT_EQ(back.site.pre, cell.site.pre);
    EXPECT_EQ(back.site.post, cell.site.post);
    EXPECT_EQ(back.label, cell.label);
    EXPECT_EQ(back.footprint, cell.footprint);
    EXPECT_EQ(back.severity, cell.severity);
    EXPECT_EQ(back.replicas, cell.replicas);
    EXPECT_EQ(back.accuracy_pct, cell.accuracy_pct);   // bit-exact doubles
    EXPECT_EQ(back.drop_pct, cell.drop_pct);
    EXPECT_EQ(back.ci_halfwidth_pct, cell.ci_halfwidth_pct);
    EXPECT_EQ(back.critical, cell.critical);
    EXPECT_EQ(back.early_stopped, cell.early_stopped);
    EXPECT_EQ(back.trained, cell.trained);
    EXPECT_EQ(back.scheduled, cell.scheduled);
    EXPECT_EQ(back.site_id(), cell.site_id());
}

TEST(ShardJsonl, TruncatedLineIsRejected) {
    CellResult cell;
    cell.model = "dead_neuron";
    const std::string line = cell_to_jsonl(cell, 80.0);
    for (const std::size_t keep : {line.size() / 4, line.size() / 2,
                                   line.size() - 1}) {
        EXPECT_FALSE(cell_from_jsonl(line.substr(0, keep)).has_value())
            << "accepted a line truncated to " << keep << " bytes";
    }
    EXPECT_FALSE(cell_from_jsonl("").has_value());
    EXPECT_FALSE(cell_from_jsonl("{\"plan_index\":0}").has_value());
}

TEST_F(ShardTest, ManifestRoundTripsAndRefusesMismatch) {
    CampaignManifest manifest;
    manifest.scenario = "fi.smoke";
    manifest.shards = 4;
    manifest.cells = 12;
    manifest.quick = true;
    manifest.campaign_key = "models=dead_neuron+|key with \"quotes\"";
    write_manifest(dir_, manifest);
    const CampaignManifest back = read_manifest(dir_);
    EXPECT_EQ(back.scenario, manifest.scenario);
    EXPECT_EQ(back.shards, manifest.shards);
    EXPECT_EQ(back.cells, manifest.cells);
    EXPECT_EQ(back.quick, manifest.quick);
    EXPECT_EQ(back.campaign_key, manifest.campaign_key);

    write_manifest(dir_, manifest);  // identical re-write is fine
    CampaignManifest other = manifest;
    other.shards = 2;
    EXPECT_THROW(write_manifest(dir_, other), std::runtime_error);
    EXPECT_THROW(read_manifest(dir_ / "nowhere"), std::runtime_error);
}

TEST_F(ShardTest, EngineRunCellsMatchesFullRunPerCell) {
    core::Session session(quick_options());
    const CampaignCatalogEntry& entry = find_campaign_entry("fi.smoke");
    CampaignEngine engine(session, entry.build(session));
    const auto full = engine.run();
    ASSERT_GE(full->cells.size(), 2u);

    // Every singleton subset reproduces the full run's cell bit-for-bit.
    for (std::size_t c = 0; c < full->cells.size(); ++c) {
        const CampaignResult part = engine.run_cells({c});
        ASSERT_EQ(part.cells.size(), 1u);
        EXPECT_EQ(part.baseline_accuracy_pct, full->baseline_accuracy_pct);
        EXPECT_EQ(part.cells[0].site_id(), full->cells[c].site_id());
        EXPECT_DOUBLE_EQ(part.cells[0].accuracy_pct, full->cells[c].accuracy_pct);
        EXPECT_DOUBLE_EQ(part.cells[0].drop_pct, full->cells[c].drop_pct);
        EXPECT_EQ(part.cells[0].replicas, full->cells[c].replicas);
    }
    EXPECT_THROW(engine.run_cells({full->cells.size()}), std::out_of_range);
    EXPECT_EQ(engine.plan_cells(), full->cells.size());
}

TEST_F(ShardTest, ShardedRunMergesBitIdenticalToSingleProcess) {
    core::Session session(quick_options());
    const CampaignCatalogEntry& entry = find_campaign_entry("fi.smoke");
    CampaignEngine engine(session, entry.build(session));
    const auto full = engine.run();

    // Partial merge must refuse (shard 1 missing).
    ASSERT_GT(run_shard(session, "fi.smoke", dir_, 0, 2), 0u);
    EXPECT_THROW(merge_campaign_dir(dir_), std::runtime_error);

    ASSERT_GT(run_shard(session, "fi.smoke", dir_, 1, 2), 0u);
    const CampaignResult merged = merge_campaign_dir(dir_);

    // to_json renders every double at round-trip precision, so string
    // equality is bit-identity of the whole result — cells, counters,
    // sensitivity map and all.
    EXPECT_EQ(merged.to_json(), full->to_json());
    EXPECT_EQ(merged.evaluations, full->evaluations);
    EXPECT_EQ(merged.trainings, full->trainings);

    // Completed shards are idempotent: re-running executes nothing.
    EXPECT_EQ(run_shard(session, "fi.smoke", dir_, 0, 2), 0u);
}

TEST_F(ShardTest, InterruptedShardResumesBitIdentical) {
    core::Session session(quick_options());
    const CampaignCatalogEntry& entry = find_campaign_entry("fi.smoke");
    CampaignEngine engine(session, entry.build(session));
    const auto full = engine.run();

    ASSERT_GT(run_shard(session, "fi.smoke", dir_, 0, 1), 0u);

    // Simulate a worker killed mid-write: chop the file mid-way through
    // its final line, leaving a valid prefix plus a torn record.
    const fs::path file = shard_file(dir_, 0);
    const auto size = fs::file_size(file);
    fs::resize_file(file, size - 25);

    // Resume: the torn line is discarded and only its cell re-executes.
    const std::size_t resumed = run_shard(session, "fi.smoke", dir_, 0, 1);
    EXPECT_GE(resumed, 1u);
    EXPECT_LT(resumed, full->cells.size());

    const CampaignResult merged = merge_campaign_dir(dir_);
    EXPECT_EQ(merged.to_json(), full->to_json());
}

TEST(TrainReplicas, TrainCellsCarryConfidenceIntervals) {
    // train_replicas > 1 retrains each train-under-fault cell over derived
    // seed streams: replica counts, the trainings counter and a CI show up,
    // while train_replicas = 1 (the default) keeps the classic single
    // training (pinned elsewhere against fig7b).
    core::RunOptions options = quick_options();
    options.train_samples = 120;  // keep the retraining cheap
    core::Session session(options);

    CampaignConfig config;
    config.models = {find_fault_model("driver_gain_drift")};
    config.eval_samples = 30;
    config.early_stop.enabled = false;
    config.early_stop.min_replicas = 2;
    config.train_replicas = 2;

    CampaignEngine engine(session, config);
    const auto result = engine.run();
    ASSERT_FALSE(result->cells.empty());
    std::size_t expected_trainings = 0;
    for (const CellResult& cell : result->cells) {
        ASSERT_TRUE(cell.trained);
        EXPECT_EQ(cell.replicas, 2u);
        EXPECT_GE(cell.ci_halfwidth_pct, 0.0);
        expected_trainings += cell.replicas;
    }
    EXPECT_EQ(result->trainings, expected_trainings);

    // The replica axis changes the campaign identity (and so the session
    // cache key).
    CampaignConfig single = config;
    single.train_replicas = 1;
    EXPECT_NE(single.cache_key(), config.cache_key());
}

}  // namespace
}  // namespace snnfi::fi
