// Glitch campaign cells: the degenerate constant profile must reproduce
// the static VddCalibration-driven campaign bit-for-bit (fig7b / attack 5
// equivalence), and time-localised profiles must run end-to-end through
// the scheduled-overlay inference path, deterministically for any worker
// count.
#include "fi/campaign.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace snnfi::fi {
namespace {

core::RunOptions tiny_options(std::size_t workers = 1) {
    core::RunOptions options;
    options.quick = true;
    options.train_samples = 60;
    options.n_neurons = 16;
    options.eval_window = 30;
    options.max_workers = workers;
    return options;
}

/// A hand-built time-localised profile (mid-sample dip at the paper's
/// 0.8 V operating point) — no circuit simulation needed.
attack::GlitchProfile mid_sample_dip() {
    return attack::GlitchProfile({{0.25, 0.5, -0.1791, 0.68}});
}

CampaignConfig glitch_config(std::vector<GlitchCellSpec> cells) {
    CampaignConfig config;
    config.glitches = std::move(cells);
    config.eval_samples = 20;
    config.early_stop.enabled = false;
    config.early_stop.min_replicas = 2;
    return config;
}

TEST(GlitchCampaign, ConstantProfileReproducesFig7bBitForBit) {
    core::Session session(tiny_options());

    // The paper scenario (fig7b, quick grid: theta -20% / +20%)...
    const core::RunResult fig7b = session.run("fig7b");
    ASSERT_EQ(fig7b.table.num_rows(), 2u);

    // ...and the same two operating points as degenerate constant glitch
    // profiles (threshold untouched, driver gain 1 + delta).
    std::vector<GlitchCellSpec> cells;
    for (const double delta : {-0.2, 0.2}) {
        GlitchCellSpec cell;
        cell.id = "const_theta" + std::to_string(delta);
        cell.profile = attack::GlitchProfile::constant(0.0, 1.0 + delta);
        cell.severity = delta;
        cells.push_back(cell);
    }
    CampaignEngine engine(session, glitch_config(std::move(cells)));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);

    for (std::size_t row = 0; row < 2; ++row) {
        const CellResult& cell = campaign->cells[row];
        // Constant profiles collapse onto the train-under-fault path...
        EXPECT_TRUE(cell.trained);
        EXPECT_FALSE(cell.scheduled);
        // ...and the accuracy is attack 1's, bit for bit (same cached
        // suite, same FaultSpec).
        EXPECT_DOUBLE_EQ(cell.accuracy_pct, fig7b.table.number_at(row, 1));
    }
    EXPECT_EQ(campaign->trainings, 2u);
}

TEST(GlitchCampaign, ConstantProfileFromCalibrationMatchesAttack5Point) {
    core::Session session(tiny_options());
    const attack::VddCalibration calibration =
        attack::VddCalibration::paper_reference();

    GlitchCellSpec cell;
    cell.id = "const_vdd0.8";
    cell.profile = attack::GlitchProfile::constant_from(calibration, 0.8);
    cell.severity = 0.8;
    CampaignEngine engine(session, glitch_config({cell}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 1u);
    EXPECT_TRUE(campaign->cells[0].trained);

    // The equivalent static attack-5 fault through the same cached suite.
    const attack::FaultSpec spec = cell.profile.to_fault_spec();
    EXPECT_EQ(spec.layer, attack::TargetLayer::kBoth);
    const attack::AttackOutcome outcome = session.attack_suite()->run(spec);
    EXPECT_DOUBLE_EQ(campaign->cells[0].accuracy_pct, outcome.accuracy * 100.0);
}

TEST(GlitchCampaign, ScheduledCellsRunThroughTheBatchedInferencePath) {
    core::Session session(tiny_options());
    GlitchCellSpec cell;
    cell.id = "rect_mid_dip";
    cell.profile = mid_sample_dip();
    cell.severity = 0.8;
    CampaignEngine engine(session, glitch_config({cell}));
    const auto campaign = engine.run();

    ASSERT_EQ(campaign->cells.size(), 1u);
    const CellResult& result = campaign->cells[0];
    EXPECT_FALSE(result.trained);
    EXPECT_TRUE(result.scheduled);
    EXPECT_EQ(result.site_id(), "rect_mid_dip");
    EXPECT_EQ(result.replicas, 2u);
    EXPECT_GE(result.accuracy_pct, 0.0);
    EXPECT_LE(result.accuracy_pct, 100.0);
    // 2 clean replica passes + 2 faulty (cell x replica) passes.
    EXPECT_EQ(campaign->evaluations, 4u);
    EXPECT_EQ(campaign->trainings, 0u);
    // Rendered mode marks the scheduled path.
    const std::string csv = campaign->detail_table("glitch").to_csv();
    EXPECT_NE(csv.find("sched"), std::string::npos);
}

TEST(GlitchCampaign, MixedConstantAndScheduledCellsCoexist) {
    core::Session session(tiny_options());
    GlitchCellSpec constant;
    constant.id = "const";
    constant.profile = attack::GlitchProfile::constant(0.0, 0.8);
    GlitchCellSpec scheduled;
    scheduled.id = "dip";
    scheduled.profile = mid_sample_dip();
    CampaignEngine engine(session, glitch_config({constant, scheduled}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);
    EXPECT_TRUE(campaign->cells[0].trained);
    EXPECT_TRUE(campaign->cells[1].scheduled);
    // A milder mid-sample dip should never be (meaningfully) worse than
    // the full-run corruption of the same operating point; both report
    // sane percentages.
    for (const CellResult& cell : campaign->cells) {
        EXPECT_GE(cell.accuracy_pct, 0.0);
        EXPECT_LE(cell.accuracy_pct, 100.0);
    }
}

TEST(GlitchCampaign, DeterministicAcrossWorkerCounts) {
    const auto render = [&](std::size_t workers) {
        core::Session session(tiny_options(workers));
        GlitchCellSpec cell;
        cell.id = "dip";
        cell.profile = mid_sample_dip();
        CampaignEngine engine(session, glitch_config({cell}));
        return engine.run()->detail_table("glitch").to_csv();
    };
    EXPECT_EQ(render(1), render(4));
}

TEST(GlitchCampaign, CacheKeyDistinguishesProfiles) {
    core::Session session(tiny_options());
    GlitchCellSpec a;
    a.id = "dip";
    a.profile = mid_sample_dip();
    CampaignEngine first(session, glitch_config({a}));
    const auto result_a = first.run();

    GlitchCellSpec b = a;  // same id, different waveform
    b.profile = attack::GlitchProfile({{0.5, 0.75, -0.1791, 0.68}});
    CampaignEngine second(session, glitch_config({b}));
    const auto result_b = second.run();
    EXPECT_NE(result_a.get(), result_b.get());

    // Identical config is a pure cache hit.
    CampaignEngine third(session, glitch_config({a}));
    EXPECT_EQ(third.run().get(), result_a.get());
}

}  // namespace
}  // namespace snnfi::fi
