// Glitch campaign cells: the degenerate constant profile must reproduce
// the static VddCalibration-driven campaign bit-for-bit (fig7b / attack 5
// equivalence), and time-localised profiles must run end-to-end through
// the scheduled-overlay inference path, deterministically for any worker
// count.
#include "fi/campaign.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace snnfi::fi {
namespace {

core::RunOptions tiny_options(std::size_t workers = 1) {
    core::RunOptions options;
    options.quick = true;
    options.train_samples = 60;
    options.n_neurons = 16;
    options.eval_window = 30;
    options.max_workers = workers;
    return options;
}

/// A hand-built time-localised profile (mid-sample dip at the paper's
/// 0.8 V operating point) — no circuit simulation needed.
attack::GlitchProfile mid_sample_dip() {
    return attack::GlitchProfile({{0.25, 0.5, -0.1791, 0.68}});
}

CampaignConfig glitch_config(std::vector<GlitchCellSpec> cells) {
    CampaignConfig config;
    config.glitches = std::move(cells);
    config.eval_samples = 20;
    config.early_stop.enabled = false;
    config.early_stop.min_replicas = 2;
    return config;
}

TEST(GlitchCampaign, ConstantProfileReproducesFig7bBitForBit) {
    core::Session session(tiny_options());

    // The paper scenario (fig7b, quick grid: theta -20% / +20%)...
    const core::RunResult fig7b = session.run("fig7b");
    ASSERT_EQ(fig7b.table.num_rows(), 2u);

    // ...and the same two operating points as degenerate constant glitch
    // profiles (threshold untouched, driver gain 1 + delta).
    std::vector<GlitchCellSpec> cells;
    for (const double delta : {-0.2, 0.2}) {
        GlitchCellSpec cell;
        cell.id = "const_theta" + std::to_string(delta);
        cell.profile = attack::GlitchProfile::constant(0.0, 1.0 + delta);
        cell.severity = delta;
        cells.push_back(cell);
    }
    CampaignEngine engine(session, glitch_config(std::move(cells)));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);

    for (std::size_t row = 0; row < 2; ++row) {
        const CellResult& cell = campaign->cells[row];
        // Constant profiles collapse onto the train-under-fault path...
        EXPECT_TRUE(cell.trained);
        EXPECT_FALSE(cell.scheduled);
        // ...and the accuracy is attack 1's, bit for bit (same cached
        // suite, same FaultSpec).
        EXPECT_DOUBLE_EQ(cell.accuracy_pct, fig7b.table.number_at(row, 1));
    }
    EXPECT_EQ(campaign->trainings, 2u);
}

TEST(GlitchCampaign, ConstantProfileFromCalibrationMatchesAttack5Point) {
    core::Session session(tiny_options());
    const attack::VddCalibration calibration =
        attack::VddCalibration::paper_reference();

    GlitchCellSpec cell;
    cell.id = "const_vdd0.8";
    cell.profile = attack::GlitchProfile::constant_from(calibration, 0.8);
    cell.severity = 0.8;
    CampaignEngine engine(session, glitch_config({cell}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 1u);
    EXPECT_TRUE(campaign->cells[0].trained);

    // The equivalent static attack-5 fault through the same cached suite.
    const attack::FaultSpec spec = cell.profile.to_fault_spec();
    EXPECT_EQ(spec.layer, attack::TargetLayer::kBoth);
    const attack::AttackOutcome outcome = session.attack_suite()->run(spec);
    EXPECT_DOUBLE_EQ(campaign->cells[0].accuracy_pct, outcome.accuracy * 100.0);
}

TEST(GlitchCampaign, ScheduledCellsRunThroughTheBatchedInferencePath) {
    core::Session session(tiny_options());
    GlitchCellSpec cell;
    cell.id = "rect_mid_dip";
    cell.profile = mid_sample_dip();
    cell.severity = 0.8;
    CampaignEngine engine(session, glitch_config({cell}));
    const auto campaign = engine.run();

    ASSERT_EQ(campaign->cells.size(), 1u);
    const CellResult& result = campaign->cells[0];
    EXPECT_FALSE(result.trained);
    EXPECT_TRUE(result.scheduled);
    EXPECT_EQ(result.site_id(), "rect_mid_dip");
    EXPECT_EQ(result.replicas, 2u);
    EXPECT_GE(result.accuracy_pct, 0.0);
    EXPECT_LE(result.accuracy_pct, 100.0);
    // 2 clean replica passes + 2 faulty (cell x replica) passes.
    EXPECT_EQ(campaign->evaluations, 4u);
    EXPECT_EQ(campaign->trainings, 0u);
    // Rendered mode marks the scheduled path.
    const std::string csv = campaign->detail_table("glitch").to_csv();
    EXPECT_NE(csv.find("sched"), std::string::npos);
}

TEST(GlitchCampaign, MixedConstantAndScheduledCellsCoexist) {
    core::Session session(tiny_options());
    GlitchCellSpec constant;
    constant.id = "const";
    constant.profile = attack::GlitchProfile::constant(0.0, 0.8);
    GlitchCellSpec scheduled;
    scheduled.id = "dip";
    scheduled.profile = mid_sample_dip();
    CampaignEngine engine(session, glitch_config({constant, scheduled}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);
    EXPECT_TRUE(campaign->cells[0].trained);
    EXPECT_TRUE(campaign->cells[1].scheduled);
    // A milder mid-sample dip should never be (meaningfully) worse than
    // the full-run corruption of the same operating point; both report
    // sane percentages.
    for (const CellResult& cell : campaign->cells) {
        EXPECT_GE(cell.accuracy_pct, 0.0);
        EXPECT_LE(cell.accuracy_pct, 100.0);
    }
}

TEST(GlitchCampaign, DeterministicAcrossWorkerCounts) {
    const auto render = [&](std::size_t workers) {
        core::Session session(tiny_options(workers));
        GlitchCellSpec cell;
        cell.id = "dip";
        cell.profile = mid_sample_dip();
        CampaignEngine engine(session, glitch_config({cell}));
        return engine.run()->detail_table("glitch").to_csv();
    };
    EXPECT_EQ(render(1), render(4));
}

TEST(GlitchCampaign, CacheKeyDistinguishesProfiles) {
    core::Session session(tiny_options());
    GlitchCellSpec a;
    a.id = "dip";
    a.profile = mid_sample_dip();
    CampaignEngine first(session, glitch_config({a}));
    const auto result_a = first.run();

    GlitchCellSpec b = a;  // same id, different waveform
    b.profile = attack::GlitchProfile({{0.5, 0.75, -0.1791, 0.68}});
    CampaignEngine second(session, glitch_config({b}));
    const auto result_b = second.run();
    EXPECT_NE(result_a.get(), result_b.get());

    // Identical config is a pure cache hit.
    CampaignEngine third(session, glitch_config({a}));
    EXPECT_EQ(third.run().get(), result_a.get());
}

// --- training-time glitch cells ------------------------------------------

TEST(GlitchCampaign, TrainModeConstantProfileReproducesFig7bBitForBit) {
    core::Session session(tiny_options());

    // The paper scenario (fig7b, quick grid: theta -20% / +20%)...
    const core::RunResult fig7b = session.run("fig7b");
    ASSERT_EQ(fig7b.table.num_rows(), 2u);

    // ...and the same operating points as TRAIN-MODE glitch cells over the
    // full pass: the compiled full-range constant schedule must run the
    // exact static train-under-fault training, bit for bit (the fig7b pin
    // of the scheduled training path).
    std::vector<GlitchCellSpec> cells;
    for (const double delta : {-0.2, 0.2}) {
        GlitchCellSpec cell;
        cell.id = "train_theta" + std::to_string(delta);
        cell.profile = attack::GlitchProfile::constant(0.0, 1.0 + delta);
        cell.severity = delta;
        cell.train = true;
        cells.push_back(cell);
    }
    CampaignEngine engine(session, glitch_config(std::move(cells)));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);

    for (std::size_t row = 0; row < 2; ++row) {
        const CellResult& cell = campaign->cells[row];
        EXPECT_TRUE(cell.trained);
        EXPECT_TRUE(cell.scheduled);
        EXPECT_EQ(cell.replicas, 1u);
        EXPECT_DOUBLE_EQ(cell.accuracy_pct, fig7b.table.number_at(row, 1));
    }
    EXPECT_EQ(campaign->trainings, 2u);
    // Rendered mode marks the scheduled-training path.
    const std::string csv = campaign->detail_table("glitch").to_csv();
    EXPECT_NE(csv.find("train+sched"), std::string::npos);
}

TEST(GlitchCampaign, TrainModeMidEpochDropMonotoneInGlitchDepth) {
    core::Session session(tiny_options());
    // A mild and a deep dip over the same mid-epoch window: the deeper
    // glitch corrupts the STDP updates harder, so its accuracy drop
    // dominates (the acceptance property of the train-time pipeline).
    const auto cell_for = [](double threshold_delta, double gain,
                             const std::string& id) {
        GlitchCellSpec cell;
        cell.id = id;
        cell.profile = attack::GlitchProfile({{0.25, 0.75, threshold_delta, gain}});
        cell.train = true;
        cell.train_begin = 0.25;
        cell.train_end = 0.75;
        return cell;
    };
    CampaignEngine engine(
        session, glitch_config({cell_for(-0.02, 0.95, "mild"),
                                cell_for(-0.35, 0.40, "deep")}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);
    const CellResult& mild = campaign->cells[0];
    const CellResult& deep = campaign->cells[1];
    EXPECT_TRUE(mild.trained && mild.scheduled);
    EXPECT_TRUE(deep.trained && deep.scheduled);
    EXPECT_GE(deep.drop_pct, mild.drop_pct);
}

TEST(GlitchCampaign, TrainWindowChangesTheOutcome) {
    core::Session session(tiny_options());
    const auto windowed = [](double begin, double end, const std::string& id) {
        GlitchCellSpec cell;
        cell.id = id;
        cell.profile = mid_sample_dip();
        cell.train = true;
        cell.train_begin = begin;
        cell.train_end = end;
        return cell;
    };
    CampaignEngine engine(session,
                          glitch_config({windowed(0.0, 0.5, "early"),
                                         windowed(0.5, 1.0, "late")}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);
    // Different training windows are different experiments: the campaign
    // cache key must keep them apart (both ran, with their own numbers).
    EXPECT_EQ(campaign->trainings, 2u);
    for (const CellResult& cell : campaign->cells) {
        EXPECT_GE(cell.accuracy_pct, 0.0);
        EXPECT_LE(cell.accuracy_pct, 100.0);
    }
}

// --- per-neuron footprints ------------------------------------------------

TEST(GlitchCampaign, FootprintCellsRunScheduledAndDifferFromWholeLayer) {
    core::Session session(tiny_options());
    GlitchCellSpec whole;
    whole.id = "dip_whole";
    whole.profile = mid_sample_dip();
    GlitchCellSpec half = whole;
    half.id = "dip_half";
    half.footprint = attack::GlitchFootprint::stratified(0.5, 17);

    // The two cells really compile to different fault programs: the
    // whole-layer cell keeps the uniform network-wide gain, the
    // half-footprint cell carries per-neuron ops on half the neurons.
    snn::DiehlCookConfig config;
    config.n_neurons = 16;
    const attack::GlitchCompiler compiler(config);
    const auto uniform = compiler.compile(whole.profile, whole.footprint);
    const auto fractional = compiler.compile(half.profile, half.footprint);
    ASSERT_EQ(uniform.size(), 1u);
    ASSERT_EQ(fractional.size(), 1u);
    EXPECT_TRUE(uniform[0].overlay.has_driver_gain());
    EXPECT_FALSE(fractional[0].overlay.has_driver_gain());
    EXPECT_NE(uniform[0].overlay.neuron_ops().size(),
              fractional[0].overlay.neuron_ops().size());

    CampaignEngine engine(session, glitch_config({whole, half}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);
    EXPECT_TRUE(campaign->cells[0].scheduled);
    EXPECT_TRUE(campaign->cells[1].scheduled);
    EXPECT_EQ(campaign->cells[0].site_id(), "dip_whole");
    EXPECT_EQ(campaign->cells[1].site_id(), "dip_half");
    for (const CellResult& cell : campaign->cells) {
        EXPECT_GE(cell.accuracy_pct, 0.0);
        EXPECT_LE(cell.accuracy_pct, 100.0);
    }
}

TEST(GlitchCampaign, ConstantProfileWithFootprintStaysScheduled) {
    core::Session session(tiny_options());
    // A constant profile normally collapses onto the static
    // train-under-fault path — but a fractional footprint has no static
    // FaultSpec form, so it must stay on the scheduled path.
    GlitchCellSpec cell;
    cell.id = "const_frac";
    cell.profile = attack::GlitchProfile::constant(0.0, 0.8);
    cell.footprint = attack::GlitchFootprint::stratified(0.5, 3);
    CampaignEngine engine(session, glitch_config({cell}));
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 1u);
    EXPECT_FALSE(campaign->cells[0].trained);
    EXPECT_TRUE(campaign->cells[0].scheduled);
}

TEST(GlitchCampaign, CacheKeyDistinguishesFootprintsAndTrainWindows) {
    core::Session session(tiny_options());
    GlitchCellSpec cell;
    cell.id = "dip";
    cell.profile = mid_sample_dip();
    CampaignEngine first(session, glitch_config({cell}));
    const auto base = first.run();

    GlitchCellSpec footprinted = cell;
    footprinted.footprint = attack::GlitchFootprint::stratified(0.25, 11);
    CampaignEngine second(session, glitch_config({footprinted}));
    EXPECT_NE(second.run().get(), base.get());

    GlitchCellSpec trained = cell;
    trained.train = true;
    trained.train_begin = 0.25;
    trained.train_end = 0.75;
    CampaignEngine third(session, glitch_config({trained}));
    EXPECT_NE(third.run().get(), base.get());
}

}  // namespace
}  // namespace snnfi::fi
