// Fault-site enumeration: deterministic ordering, completeness on a small
// topology (config-driven — no network needs to exist), stratified seeded
// subsampling, and the deprecated facade overload.
#include "fi/sites.hpp"

#include <gtest/gtest.h>

#include <set>

namespace snnfi::fi {
namespace {

snn::DiehlCookConfig small_config() {
    snn::DiehlCookConfig config;
    config.n_input = 12;
    config.n_neurons = 5;
    return config;
}

TEST(SiteEnumeration, NeuronSitesCompleteAndOrdered) {
    const auto config = small_config();
    const SitePlan plan;  // both layers, no cap
    EXPECT_EQ(site_space_size(config, SiteKind::kNeuron, plan), 10u);

    const auto sites = enumerate_sites(config, SiteKind::kNeuron, plan);
    ASSERT_EQ(sites.size(), 10u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(sites[i].layer, attack::TargetLayer::kExcitatory);
        EXPECT_EQ(sites[i].neuron, i);
        EXPECT_EQ(sites[5 + i].layer, attack::TargetLayer::kInhibitory);
        EXPECT_EQ(sites[5 + i].neuron, i);
    }
    EXPECT_EQ(sites[0].id(), "exc.n0");
    EXPECT_EQ(sites[9].id(), "inh.n4");
}

TEST(SiteEnumeration, SynapseSitesCompleteRowMajor) {
    const auto config = small_config();
    const SitePlan plan;
    EXPECT_EQ(site_space_size(config, SiteKind::kSynapse, plan), 60u);

    const auto sites = enumerate_sites(config, SiteKind::kSynapse, plan);
    ASSERT_EQ(sites.size(), 60u);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        EXPECT_EQ(sites[i].kind, SiteKind::kSynapse);
        EXPECT_EQ(sites[i].pre, i / 5);
        EXPECT_EQ(sites[i].post, i % 5);
        seen.insert({sites[i].pre, sites[i].post});
    }
    EXPECT_EQ(seen.size(), 60u);  // every synapse exactly once
    EXPECT_EQ(sites.front().id(), "syn.w0.0");
    EXPECT_EQ(sites.back().id(), "syn.w11.4");
}

TEST(SiteEnumeration, ParameterSitesFollowThePlanLayers) {
    const auto config = small_config();
    SitePlan plan;
    plan.layers = {attack::TargetLayer::kInhibitory, attack::TargetLayer::kExcitatory};
    const auto sites = enumerate_sites(config, SiteKind::kParameter, plan);
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0].id(), "inh.param");
    EXPECT_EQ(sites[1].id(), "exc.param");
}

TEST(SiteEnumeration, SubsamplingIsSeededAndOrderPreserving) {
    const auto config = small_config();
    SitePlan plan;
    plan.max_sites = 7;
    const auto a = enumerate_sites(config, SiteKind::kSynapse, plan);
    const auto b = enumerate_sites(config, SiteKind::kSynapse, plan);
    ASSERT_EQ(a.size(), 7u);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id(), b[i].id());
    // Enumeration (row-major) order survives the draw.
    for (std::size_t i = 1; i < a.size(); ++i) {
        EXPECT_LT(a[i - 1].pre * 5 + a[i - 1].post, a[i].pre * 5 + a[i].post);
    }

    SitePlan reseeded = plan;
    reseeded.sample_seed = plan.sample_seed + 1;
    const auto c = enumerate_sites(config, SiteKind::kSynapse, reseeded);
    ASSERT_EQ(c.size(), 7u);
    bool any_difference = false;
    for (std::size_t i = 0; i < c.size(); ++i)
        any_difference = any_difference || c[i].id() != a[i].id();
    EXPECT_TRUE(any_difference);  // a different seed draws a different sample
}

TEST(SiteEnumeration, NeuronSubsamplingIsStratifiedPerLayer) {
    const auto config = small_config();
    SitePlan plan;
    plan.max_sites = 2;  // per layer for neuron sites
    const auto sites = enumerate_sites(config, SiteKind::kNeuron, plan);
    ASSERT_EQ(sites.size(), 4u);
    std::size_t excitatory = 0;
    for (const auto& site : sites) {
        if (site.layer == attack::TargetLayer::kExcitatory) ++excitatory;
    }
    EXPECT_EQ(excitatory, 2u);  // both layers stay represented
}

}  // namespace
}  // namespace snnfi::fi
