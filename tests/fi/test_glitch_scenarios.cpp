// The new fi.glitch scenario families, exercised end-to-end through the
// registry on a tiny workload: training-time glitches (fi.glitch.train.*),
// per-neuron footprints (fi.glitch.footprint) and the VampIF
// characterisation preset (fi.glitch.vamp). These run the real circuit
// characterisation through the Session cache, so they double as smoke
// tests of the preset plumbing.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/session.hpp"

namespace snnfi::core {
namespace {

RunOptions tiny_options() {
    RunOptions options;
    options.quick = true;
    options.train_samples = 60;
    options.n_neurons = 16;
    options.eval_window = 30;
    options.max_workers = 2;
    return options;
}

TEST(GlitchScenarios, TrainFamilyIsRegistered) {
    ScenarioRegistry& registry = ScenarioRegistry::instance();
    for (const char* id : {"fi.glitch.train.smoke", "fi.glitch.train.depth",
                           "fi.glitch.train.window", "fi.glitch.footprint",
                           "fi.glitch.vamp"}) {
        EXPECT_NO_THROW((void)registry.find(id)) << id;
    }
}

TEST(GlitchScenarios, TrainSmokeRunsTheScheduledTrainingPath) {
    Session session(tiny_options());
    const RunResult result = session.run("fi.glitch.train.smoke");
    ASSERT_GE(result.table.num_rows(), 1u);
    // The cell trained under the scheduled glitch (mode column).
    EXPECT_NE(result.table.to_csv().find("train+sched"), std::string::npos);
}

TEST(GlitchScenarios, FootprintScenarioSweepsSpatialCoupling) {
    Session session(tiny_options());
    const RunResult result = session.run("fi.glitch.footprint");
    ASSERT_GE(result.table.num_rows(), 2u);
    const std::string csv = result.table.to_csv();
    EXPECT_NE(csv.find("fp_whole"), std::string::npos);
    EXPECT_NE(csv.find("fp0.5"), std::string::npos);
    // Fractional footprints ride the scheduled inference path.
    EXPECT_NE(csv.find("sched"), std::string::npos);
}

TEST(GlitchScenarios, VampPresetScenarioUsesItsOwnCharacterisation) {
    Session session(tiny_options());
    const RunResult result = session.run("fi.glitch.vamp");
    ASSERT_GE(result.table.num_rows(), 1u);
    EXPECT_NE(result.table.to_csv().find("vamp_if"), std::string::npos);

    // The preset characterisation is session-cached under its own hash: a
    // second run of the scenario re-uses it (hits, no new misses for the
    // profile artifact).
    const std::size_t misses_before = session.cache_misses();
    const RunResult again = session.run("fi.glitch.vamp");
    EXPECT_EQ(session.cache_misses(), misses_before);
    EXPECT_EQ(again.table.to_csv(), result.table.to_csv());
}

}  // namespace
}  // namespace snnfi::core
