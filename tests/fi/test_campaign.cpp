// Campaign engine behaviour through a real (tiny) Session: baseline reuse,
// quick-mode early-stopping guarantees, worker-count determinism, and the
// paper's attack 1 falling out of the drift model with identical numbers.
#include "fi/campaign.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace snnfi::fi {
namespace {

core::RunOptions tiny_options(std::size_t workers = 1) {
    core::RunOptions options;
    options.quick = true;
    options.train_samples = 60;
    options.n_neurons = 16;
    options.eval_window = 30;
    options.max_workers = workers;
    return options;
}

CampaignConfig tiny_config() {
    CampaignConfig config;
    config.models = {find_fault_model("dead_neuron"), find_fault_model("stuck_at_0")};
    config.sites.max_sites = 2;
    config.eval_samples = 20;
    config.early_stop.enabled = false;
    config.early_stop.min_replicas = 2;
    return config;
}

TEST(Campaign, QuickModeNeverEarlyStopsAndRunsFixedReplicas) {
    core::Session session(tiny_options());
    CampaignEngine engine(session, tiny_config());
    const auto campaign = engine.run();
    ASSERT_FALSE(campaign->cells.empty());
    for (const auto& cell : campaign->cells) {
        EXPECT_FALSE(cell.early_stopped) << cell.site.id();
        EXPECT_EQ(cell.replicas, 2u) << cell.site.id();
        EXPECT_FALSE(cell.trained);
    }
    EXPECT_EQ(campaign->trainings, 0u);
    EXPECT_GT(campaign->evaluations, 0u);
}

TEST(Campaign, ResultIsSessionCachedAndBaselineTrainsOnce) {
    core::Session session(tiny_options());
    CampaignEngine first(session, tiny_config());
    const auto a = first.run();
    const std::size_t misses_after_first = session.cache_misses();

    CampaignEngine second(session, tiny_config());
    const auto b = second.run();
    EXPECT_EQ(a.get(), b.get());  // same artifact, no re-execution
    EXPECT_EQ(session.cache_misses(), misses_after_first);

    // The smoke scenario rides the same machinery end-to-end.
    const core::RunResult smoke = session.run("fi.smoke");
    EXPECT_GT(smoke.table.num_rows(), 0u);
    const core::RunResult again = session.run("fi.smoke");
    EXPECT_EQ(again.cache_misses, 0u);  // campaign + baseline fully reused
    EXPECT_GE(again.cache_hits, 1u);
}

TEST(Campaign, DeterministicAcrossWorkerCounts) {
    const auto render = [](std::size_t workers) {
        core::Session session(tiny_options(workers));
        CampaignEngine engine(session, tiny_config());
        return engine.run()->detail_table("campaign").to_csv() +
               engine.run()->sensitivity_map("map").to_csv();
    };
    EXPECT_EQ(render(1), render(4));
}

TEST(Campaign, DriverGainDriftReproducesAttack1Numbers) {
    core::Session session(tiny_options());

    // The paper scenario (fig7b, quick grid: theta -20% / +20%)...
    const core::RunResult fig7b = session.run("fig7b");
    ASSERT_EQ(fig7b.table.num_rows(), 2u);

    // ...and the same attack expressed as the parametric drift model.
    CampaignConfig config;
    config.models = {find_fault_model("driver_gain_drift")};
    config.eval_samples = 20;
    config.early_stop.enabled = false;
    config.early_stop.min_replicas = 1;
    CampaignEngine engine(session, config);
    const auto campaign = engine.run();
    ASSERT_EQ(campaign->cells.size(), 2u);

    for (std::size_t row = 0; row < 2; ++row) {
        const CellResult& cell = campaign->cells[row];
        EXPECT_TRUE(cell.trained);
        EXPECT_DOUBLE_EQ(cell.severity * 100.0, fig7b.table.number_at(row, 0));
        // Acceptance bound is 1%; sharing the Session's cached suite makes
        // the numbers identical in practice.
        EXPECT_NEAR(cell.accuracy_pct, fig7b.table.number_at(row, 1), 1.0);
        EXPECT_NEAR(cell.accuracy_pct, fig7b.table.number_at(row, 1), 1e-9);
    }
}

TEST(Campaign, DriftDriverGainScenarioReproducesFig7bBitForBit) {
    core::Session session(tiny_options());
    const core::RunResult fig7b = session.run("fig7b");
    ASSERT_EQ(fig7b.table.num_rows(), 2u);
    const std::size_t misses_after_fig7b = session.cache_misses();

    const core::RunResult drift = session.run("fi.drift.driver_gain");
    ASSERT_EQ(drift.table.num_rows(), 2u);
    for (std::size_t row = 0; row < 2; ++row) {
        // severity and accuracy_pct columns must match attack 1 exactly
        // (same train-under-fault path off the same cached suite).
        EXPECT_DOUBLE_EQ(drift.table.number_at(row, 2) * 100.0,
                         fig7b.table.number_at(row, 0));
        EXPECT_DOUBLE_EQ(drift.table.number_at(row, 4), fig7b.table.number_at(row, 1));
    }
    // The scenario only missed its own campaign artifact: the baseline
    // (inside the suite) was trained exactly once, for fig7b.
    EXPECT_EQ(session.cache_misses(), misses_after_fig7b + 1);
}

TEST(Campaign, EvaluationsCountCleanAndFaultyRuntimePasses) {
    core::Session session(tiny_options());
    CampaignEngine engine(session, tiny_config());
    const auto campaign = engine.run();
    // 2 replicas: per replica one clean pass, plus one faulty pass per
    // (cell, replica) — the batched engine must count them all.
    std::size_t cells = campaign->cells.size();
    EXPECT_EQ(campaign->evaluations, 2u + 2u * cells);
}

}  // namespace
}  // namespace snnfi::fi
