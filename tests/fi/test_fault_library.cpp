// The fault library: taxonomy integrity, bit-exact injection round trips,
// behavioural hooks, and the drift models' FaultSpec equivalence.
#include "fi/fault.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "snn/nodes.hpp"

namespace snnfi::fi {
namespace {

snn::DiehlCookNetwork small_network() {
    snn::DiehlCookConfig config;
    config.n_input = 12;
    config.n_neurons = 5;
    return snn::DiehlCookNetwork(config, /*seed=*/3);
}

TEST(FaultLibrary, CatalogNamesUniqueAndResolvable) {
    const auto& library = standard_fault_library();
    EXPECT_GE(library.size(), 7u);  // >= 5 models demanded by the campaign
    std::set<std::string> names;
    for (const auto& model : library) {
        EXPECT_TRUE(names.insert(model->name()).second) << model->name();
        EXPECT_FALSE(std::string(model->description()).empty());
        EXPECT_FALSE(model->severity_grid(true).empty());
        EXPECT_FALSE(model->severity_grid(false).empty());
        EXPECT_EQ(find_fault_model(model->name()).get(), model.get());
    }
    EXPECT_THROW(find_fault_model("gamma_ray"), std::invalid_argument);
}

TEST(FaultLibrary, BitFlipIsAnInvolution) {
    for (const float value : {0.0f, 0.125f, -3.5f, 1e-30f}) {
        for (const unsigned bit : {0u, 7u, 22u, 23u, 30u, 31u}) {
            const float flipped = flip_weight_bit(value, bit);
            EXPECT_NE(std::memcmp(&flipped, &value, sizeof(float)), 0);
            const float restored = flip_weight_bit(flipped, bit);
            EXPECT_EQ(std::memcmp(&restored, &value, sizeof(float)), 0);
        }
    }
    EXPECT_THROW(flip_weight_bit(1.0f, 32), std::invalid_argument);
}

TEST(FaultLibrary, BitFlipInjectionRoundTripsBitExact) {
    auto network = small_network();
    const snn::Matrix before = network.input_connection().weights();

    FaultSite site;
    site.kind = SiteKind::kSynapse;
    site.pre = 7;
    site.post = 3;
    const auto model = find_fault_model("bit_flip");
    model->inject(network, site, /*severity=*/30);
    EXPECT_NE(network.input_connection().weights().at(7, 3), before.at(7, 3));
    model->inject(network, site, /*severity=*/30);  // flip back

    const snn::Matrix& after = network.input_connection().weights();
    ASSERT_EQ(after.flat().size(), before.flat().size());
    EXPECT_EQ(std::memcmp(after.flat().data(), before.flat().data(),
                          before.flat().size() * sizeof(float)),
              0);
}

TEST(FaultLibrary, StuckAtPinsTheWeightToTheRailValue) {
    auto network = small_network();
    FaultSite site;
    site.kind = SiteKind::kSynapse;
    site.pre = 2;
    site.post = 4;
    find_fault_model("stuck_at_1")->inject(network, site, 1.0);
    EXPECT_EQ(network.input_connection().weights().at(2, 4),
              network.input_connection().params().wmax);
    find_fault_model("stuck_at_0")->inject(network, site, 1.0);
    EXPECT_EQ(network.input_connection().weights().at(2, 4),
              network.input_connection().params().wmin);
}

TEST(FaultLibrary, DeadAndSaturatedNeuronsForceTheLayerOutput) {
    auto network = small_network();
    FaultSite dead;
    dead.kind = SiteKind::kNeuron;
    dead.layer = attack::TargetLayer::kExcitatory;
    dead.neuron = 1;
    find_fault_model("dead_neuron")->inject(network, dead, 1.0);
    EXPECT_EQ(network.excitatory().forced_state(1), snn::NeuronFault::kDead);

    FaultSite saturated = dead;
    saturated.layer = attack::TargetLayer::kInhibitory;
    saturated.neuron = 2;
    find_fault_model("saturated_neuron")->inject(network, saturated, 1.0);
    EXPECT_EQ(network.inhibitory().forced_state(2), snn::NeuronFault::kSaturated);

    // Behaviour: saturated fires with zero input, dead never fires even
    // under massive drive.
    std::vector<float> quiet(5, 0.0f);
    std::vector<float> loud(5, 1000.0f);
    std::vector<std::uint8_t> spiked;
    network.inhibitory().step(quiet, spiked);
    EXPECT_EQ(spiked[2], 1);
    network.excitatory().step(loud, spiked);
    EXPECT_EQ(spiked[1], 0);
    EXPECT_EQ(spiked[0], 1);  // healthy neighbours still fire

    network.clear_faults();
    EXPECT_EQ(network.excitatory().forced_state(1), snn::NeuronFault::kNominal);
    EXPECT_EQ(network.inhibitory().forced_state(2), snn::NeuronFault::kNominal);
}

TEST(FaultLibrary, RefractoryStretchMultipliesThePeriod) {
    auto network = small_network();
    FaultSite site;
    site.kind = SiteKind::kNeuron;
    site.layer = attack::TargetLayer::kExcitatory;
    site.neuron = 0;
    const int nominal = network.excitatory().params().refrac_steps;
    find_fault_model("refractory_stretch")->inject(network, site, 4.0);
    EXPECT_EQ(network.excitatory().refractory_steps(0), 4 * nominal);
    EXPECT_EQ(network.excitatory().refractory_steps(1), nominal);
}

TEST(FaultLibrary, DriftModelsExpressThePaperAttacks) {
    const auto threshold = find_fault_model("threshold_drift");
    const auto gain = find_fault_model("driver_gain_drift");
    EXPECT_TRUE(threshold->trains_under_fault());
    EXPECT_TRUE(gain->trains_under_fault());
    EXPECT_TRUE(gain->network_wide());

    FaultSite layer_site;
    layer_site.kind = SiteKind::kParameter;
    layer_site.layer = attack::TargetLayer::kInhibitory;
    const attack::FaultSpec thr = threshold->to_fault_spec(layer_site, -0.2);
    EXPECT_EQ(thr.layer, attack::TargetLayer::kInhibitory);
    EXPECT_DOUBLE_EQ(thr.threshold_delta, -0.2);
    EXPECT_DOUBLE_EQ(thr.fraction, 1.0);
    EXPECT_EQ(thr.semantics, attack::ThresholdSemantics::kBindsNetValue);

    FaultSite network_site;
    network_site.kind = SiteKind::kParameter;
    network_site.layer = attack::TargetLayer::kNone;
    const attack::FaultSpec theta = gain->to_fault_spec(network_site, -0.2);
    EXPECT_EQ(theta.layer, attack::TargetLayer::kNone);
    EXPECT_DOUBLE_EQ(theta.driver_gain, 0.8);  // attack 1's -20% point

    // Non-drift models have no FaultSpec form.
    EXPECT_THROW(find_fault_model("dead_neuron")->to_fault_spec(layer_site, 1.0),
                 std::logic_error);
}

TEST(FaultLibrary, SnapshotRestoreRevertsLearningAndFaults) {
    auto network = small_network();
    std::vector<float> image(12, 0.9f);
    (void)network.run_sample(image);  // STDP moves weights
    const snn::NetworkState state = network.capture_state();

    (void)network.run_sample(image);  // diverge further
    FaultSite site;
    site.kind = SiteKind::kNeuron;
    site.layer = attack::TargetLayer::kExcitatory;
    site.neuron = 0;
    find_fault_model("dead_neuron")->inject(network, site, 1.0);

    network.restore_state(state);
    const snn::Matrix& weights = network.input_connection().weights();
    EXPECT_EQ(std::memcmp(weights.flat().data(), state.input_weights.flat().data(),
                          weights.flat().size() * sizeof(float)),
              0);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(network.excitatory().theta()[i], state.exc_theta[i]);
        EXPECT_EQ(network.excitatory().forced_state(i), snn::NeuronFault::kNominal);
    }
    EXPECT_EQ(network.driver_gain(), 1.0f);
}

}  // namespace
}  // namespace snnfi::fi
