// The fault library: taxonomy integrity, bit-exact overlay round trips,
// behavioural fault expression through the runtime, and the drift models'
// FaultSpec equivalence.
#include "fi/fault.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "snn/model.hpp"
#include "snn/runtime.hpp"

namespace snnfi::fi {
namespace {

snn::DiehlCookConfig small_config() {
    snn::DiehlCookConfig config;
    config.n_input = 12;
    config.n_neurons = 5;
    config.steps_per_sample = 50;
    return config;
}

std::shared_ptr<const snn::NetworkModel> small_model() {
    return snn::NetworkModel::random(small_config(), /*seed=*/3);
}

TEST(FaultLibrary, CatalogNamesUniqueAndResolvable) {
    const auto& library = standard_fault_library();
    EXPECT_GE(library.size(), 7u);  // >= 5 models demanded by the campaign
    std::set<std::string> names;
    for (const auto& model : library) {
        EXPECT_TRUE(names.insert(model->name()).second) << model->name();
        EXPECT_FALSE(std::string(model->description()).empty());
        EXPECT_FALSE(model->severity_grid(true).empty());
        EXPECT_FALSE(model->severity_grid(false).empty());
        EXPECT_EQ(find_fault_model(model->name()).get(), model.get());
    }
    EXPECT_THROW(find_fault_model("gamma_ray"), std::invalid_argument);
}

TEST(FaultLibrary, BitFlipIsAnInvolution) {
    for (const float value : {0.0f, 0.125f, -3.5f, 1e-30f}) {
        for (const unsigned bit : {0u, 7u, 22u, 23u, 30u, 31u}) {
            const float flipped = flip_weight_bit(value, bit);
            EXPECT_NE(std::memcmp(&flipped, &value, sizeof(float)), 0);
            const float restored = flip_weight_bit(flipped, bit);
            EXPECT_EQ(std::memcmp(&restored, &value, sizeof(float)), 0);
        }
    }
    EXPECT_THROW(flip_weight_bit(1.0f, 32), std::invalid_argument);
}

TEST(FaultLibrary, BitFlipOverlayRoundTripsBitExact) {
    const auto model = small_model();
    const auto config = small_config();

    FaultSite site;
    site.kind = SiteKind::kSynapse;
    site.pre = 7;
    site.post = 3;
    const auto bit_flip = find_fault_model("bit_flip");

    snn::NetworkRuntime flipped(model, bit_flip->overlay(config, site, 30));
    EXPECT_NE(flipped.weight_row(7)[3], model->input_weights()(7, 3));

    // Injecting the same fault twice restores the weight bit-exactly.
    snn::FaultOverlay twice;
    bit_flip->build_overlay(twice, config, site, 30);
    bit_flip->build_overlay(twice, config, site, 30);
    snn::NetworkRuntime restored(model, twice);
    for (std::size_t pre = 0; pre < config.n_input; ++pre) {
        const auto row = restored.weight_row(pre);
        ASSERT_EQ(std::memcmp(row.data(), model->weight_row(pre).data(),
                              row.size() * sizeof(float)),
                  0)
            << "row " << pre;
    }
}

TEST(FaultLibrary, StuckAtPinsTheWeightToTheRailValue) {
    const auto model = small_model();
    const auto config = small_config();
    FaultSite site;
    site.kind = SiteKind::kSynapse;
    site.pre = 2;
    site.post = 4;
    snn::NetworkRuntime high(model,
                             find_fault_model("stuck_at_1")->overlay(config, site, 1.0));
    EXPECT_EQ(high.weight_row(2)[4], config.stdp.wmax);
    snn::NetworkRuntime low(model,
                            find_fault_model("stuck_at_0")->overlay(config, site, 1.0));
    EXPECT_EQ(low.weight_row(2)[4], config.stdp.wmin);
}

TEST(FaultLibrary, DeadAndSaturatedNeuronsForceTheLayerOutput) {
    const auto model = small_model();
    const auto config = small_config();

    FaultSite dead;
    dead.kind = SiteKind::kNeuron;
    dead.layer = attack::TargetLayer::kExcitatory;
    dead.neuron = 1;
    FaultSite saturated;
    saturated.kind = SiteKind::kNeuron;
    saturated.layer = attack::TargetLayer::kExcitatory;
    saturated.neuron = 2;

    snn::FaultOverlay overlay;
    find_fault_model("dead_neuron")->build_overlay(overlay, config, dead, 1.0);
    find_fault_model("saturated_neuron")
        ->build_overlay(overlay, config, saturated, 1.0);
    snn::NetworkRuntime runtime(model, overlay);
    EXPECT_EQ(runtime.forced_state(snn::OverlayLayer::kExcitatory, 1),
              snn::NeuronFault::kDead);
    EXPECT_EQ(runtime.forced_state(snn::OverlayLayer::kExcitatory, 2),
              snn::NeuronFault::kSaturated);

    // Behaviour: the saturated neuron fires on every step, the dead one
    // never — even under a bright input.
    const std::vector<float> image(config.n_input, 1.0f);
    const auto activity = runtime.run_sample(image);
    EXPECT_EQ(activity.exc_counts[1], 0u);
    EXPECT_EQ(activity.exc_counts[2],
              static_cast<std::uint32_t>(config.steps_per_sample));

    // Clearing the overlay restores nominal behaviour.
    runtime.set_overlay(snn::FaultOverlay{});
    EXPECT_EQ(runtime.forced_state(snn::OverlayLayer::kExcitatory, 1),
              snn::NeuronFault::kNominal);
    EXPECT_EQ(runtime.forced_state(snn::OverlayLayer::kExcitatory, 2),
              snn::NeuronFault::kNominal);
}

TEST(FaultLibrary, RefractoryStretchMultipliesThePeriod) {
    const auto model = small_model();
    const auto config = small_config();
    FaultSite site;
    site.kind = SiteKind::kNeuron;
    site.layer = attack::TargetLayer::kExcitatory;
    site.neuron = 0;
    const int nominal = config.excitatory.lif.refrac_steps;
    snn::NetworkRuntime runtime(
        model, find_fault_model("refractory_stretch")->overlay(config, site, 4.0));
    EXPECT_EQ(runtime.refractory_steps(snn::OverlayLayer::kExcitatory, 0),
              4 * nominal);
    EXPECT_EQ(runtime.refractory_steps(snn::OverlayLayer::kExcitatory, 1), nominal);
}

TEST(FaultLibrary, DriftModelsExpressThePaperAttacks) {
    const auto threshold = find_fault_model("threshold_drift");
    const auto gain = find_fault_model("driver_gain_drift");
    EXPECT_TRUE(threshold->trains_under_fault());
    EXPECT_TRUE(gain->trains_under_fault());
    EXPECT_TRUE(gain->network_wide());

    FaultSite layer_site;
    layer_site.kind = SiteKind::kParameter;
    layer_site.layer = attack::TargetLayer::kInhibitory;
    const attack::FaultSpec thr = threshold->to_fault_spec(layer_site, -0.2);
    EXPECT_EQ(thr.layer, attack::TargetLayer::kInhibitory);
    EXPECT_DOUBLE_EQ(thr.threshold_delta, -0.2);
    EXPECT_DOUBLE_EQ(thr.fraction, 1.0);
    EXPECT_EQ(thr.semantics, attack::ThresholdSemantics::kBindsNetValue);

    FaultSite network_site;
    network_site.kind = SiteKind::kParameter;
    network_site.layer = attack::TargetLayer::kNone;
    const attack::FaultSpec theta = gain->to_fault_spec(network_site, -0.2);
    EXPECT_EQ(theta.layer, attack::TargetLayer::kNone);
    EXPECT_DOUBLE_EQ(theta.driver_gain, 0.8);  // attack 1's -20% point

    // Non-drift models have no FaultSpec form.
    EXPECT_THROW(find_fault_model("dead_neuron")->to_fault_spec(layer_site, 1.0),
                 std::logic_error);
}

TEST(FaultLibrary, FaultedReplicasNeverTouchTheSharedModel) {
    const auto model = small_model();
    const auto config = small_config();
    const snn::Matrix before = model->input_weights();

    FaultSite synapse;
    synapse.kind = SiteKind::kSynapse;
    synapse.pre = 2;
    synapse.post = 4;
    FaultSite neuron;
    neuron.kind = SiteKind::kNeuron;
    neuron.layer = attack::TargetLayer::kExcitatory;
    neuron.neuron = 0;

    snn::NetworkRuntime stuck(model,
                              find_fault_model("stuck_at_1")->overlay(config, synapse, 1.0));
    snn::NetworkRuntime dead(model,
                             find_fault_model("dead_neuron")->overlay(config, neuron, 1.0));
    const std::vector<float> image(config.n_input, 0.9f);
    (void)stuck.run_sample(image);
    (void)dead.run_sample(image);

    // The shared frozen model is bit-identical after both faulted runs.
    const std::vector<float> after_flat = model->input_weights().to_vector();
    const std::vector<float> before_flat = before.to_vector();
    ASSERT_EQ(after_flat.size(), before_flat.size());
    EXPECT_EQ(std::memcmp(after_flat.data(), before_flat.data(),
                          before_flat.size() * sizeof(float)),
              0);
}

}  // namespace
}  // namespace snnfi::fi
