// Attack sweep: run any of the paper's five attacks from the command line.
//
//   $ ./attack_sweep --attack=3 --delta=-0.2 --fraction=1.0
//   $ ./attack_sweep --attack=3 --delta=-0.2,-0.1,0.1,0.2   # sweep a list
//   $ ./attack_sweep --attack=5 --vdd=0.8
//
// Shows the attack layer's public API as a thin Session client: FaultSpec
// construction, the VDD calibration bridge (cached by the Session for
// attack 5), and the shared AttackSuite runner. List-valued --delta sweeps
// all the deltas in one parallel batch against one trained baseline.
#include <iostream>

#include "attack/calibration.hpp"
#include "attack/scenarios.hpp"
#include "core/session.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi attack sweep: Attacks 1-5 on demand");
    parser.add_option("attack", "3", "Attack number 1-5 (paper §IV)");
    parser.add_option("delta", "-0.2",
                      "Theta change (attack 1) or threshold change (2-4), "
                      "fractional: -0.2 = -20%; accepts a comma list");
    parser.add_option("fraction", "1.0", "Fraction of the layer hit (attacks 2-3)");
    parser.add_option("vdd", "0.8",
                      "Supply voltage(s) for attack 5 [V]; accepts a comma list");
    parser.add_option("samples", "500", "Training images");
    parser.add_option("neurons", "100", "Neurons per layer");
    parser.add_flag("paper-calibration",
                    "Use the paper's published VDD curves instead of "
                    "re-simulating the circuits (attack 5)");
    if (!parser.parse(argc, argv)) return 0;

    const int attack_id = static_cast<int>(parser.get_int("attack"));
    const std::vector<double> deltas = parser.get_doubles("delta");
    const double fraction = parser.get_double("fraction");
    const std::vector<double> vdds = parser.get_doubles("vdd");

    core::RunOptions options;
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    core::Session session(options);
    auto suite = session.attack_suite();

    std::vector<attack::FaultSpec> faults;
    std::vector<double> fault_vdds;  // attack-5 labelling only
    for (const double delta : deltas) {
        attack::FaultSpec fault;
        switch (attack_id) {
            case 1:
                fault.layer = attack::TargetLayer::kNone;
                fault.driver_gain = 1.0 + delta;
                break;
            case 2:
                fault.layer = attack::TargetLayer::kExcitatory;
                fault.fraction = fraction;
                fault.threshold_delta = delta;
                break;
            case 3:
                fault.layer = attack::TargetLayer::kInhibitory;
                fault.fraction = fraction;
                fault.threshold_delta = delta;
                break;
            case 4:
                fault.layer = attack::TargetLayer::kBoth;
                fault.fraction = 1.0;
                fault.threshold_delta = delta;
                break;
            case 5:
                break;  // driven by --vdd below
            default:
                std::cerr << "error: --attack must be 1-5\n";
                return 2;
        }
        faults.push_back(fault);
        if (attack_id == 5) break;  // deltas are ignored for attack 5
    }
    if (attack_id == 5) {
        faults.clear();
        const auto calibration =
            parser.get_bool("paper-calibration")
                ? attack::VddCalibration::paper_reference()
                : *session.calibration(circuits::NeuronKind::kAxonHillock);
        for (const double vdd : vdds) {
            attack::FaultSpec fault;
            fault.layer = attack::TargetLayer::kBoth;
            fault.fraction = 1.0;
            fault.threshold_delta = calibration.threshold_delta(vdd);
            fault.driver_gain = calibration.driver_gain(vdd);
            std::cout << "attack 5 @ VDD=" << vdd << " V -> threshold "
                      << fault.threshold_delta * 100.0 << "%, driver gain "
                      << fault.driver_gain << "\n";
            faults.push_back(fault);
            fault_vdds.push_back(vdd);
        }
    }

    std::cout << "training baseline...\n";
    std::cout << "baseline accuracy: " << suite->baseline_accuracy() * 100.0
              << "%\ntraining " << faults.size() << " fault point(s) for attack "
              << attack_id << "...\n";
    const std::vector<attack::AttackOutcome> outcomes = suite->run_many(faults);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& outcome = outcomes[i];
        std::cout << "point " << i;
        if (attack_id == 5)
            std::cout << " (VDD=" << fault_vdds[i] << " V)";
        else
            std::cout << " (delta=" << deltas[std::min(i, deltas.size() - 1)] << ")";
        std::cout << ": accuracy " << outcome.accuracy * 100.0 << "%  ("
                  << outcome.degradation_pct << "% relative), exc spikes/sample "
                  << outcome.exc_spikes_per_sample << "\n";
    }
    return 0;
}
