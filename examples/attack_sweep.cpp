// Attack sweep: run any of the paper's five attacks from the command line.
//
//   $ ./attack_sweep --attack=3 --delta=-0.2 --fraction=1.0
//   $ ./attack_sweep --attack=5 --vdd=0.8
//   $ ./attack_sweep --attack=1 --delta=0.2
//
// Shows the attack layer's public API: FaultSpec construction, the VDD
// calibration bridge (for Attack 5), and the shared AttackSuite runner.
#include <iostream>

#include "attack/calibration.hpp"
#include "attack/scenarios.hpp"
#include "data/idx.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi attack sweep: Attacks 1-5 on demand");
    parser.add_option("attack", "3", "Attack number 1-5 (paper §IV)");
    parser.add_option("delta", "-0.2",
                      "Theta change (attack 1) or threshold change (2-4), "
                      "fractional: -0.2 = -20%");
    parser.add_option("fraction", "1.0", "Fraction of the layer hit (attacks 2-3)");
    parser.add_option("vdd", "0.8", "Supply voltage for attack 5 [V]");
    parser.add_option("samples", "500", "Training images");
    parser.add_option("neurons", "100", "Neurons per layer");
    parser.add_flag("paper-calibration",
                    "Use the paper's published VDD curves instead of "
                    "re-simulating the circuits (attack 5)");
    if (!parser.parse(argc, argv)) return 0;

    const int attack_id = static_cast<int>(parser.get_int("attack"));
    const double delta = parser.get_double("delta");
    const double fraction = parser.get_double("fraction");
    const double vdd = parser.get_double("vdd");

    attack::AttackRunConfig config;
    config.network.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    config.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    attack::AttackSuite suite(
        data::load_digits(config.train_samples, /*seed=*/42), config);

    attack::FaultSpec fault;
    switch (attack_id) {
        case 1:
            fault.layer = attack::TargetLayer::kNone;
            fault.driver_gain = 1.0 + delta;
            break;
        case 2:
            fault.layer = attack::TargetLayer::kExcitatory;
            fault.fraction = fraction;
            fault.threshold_delta = delta;
            break;
        case 3:
            fault.layer = attack::TargetLayer::kInhibitory;
            fault.fraction = fraction;
            fault.threshold_delta = delta;
            break;
        case 4:
            fault.layer = attack::TargetLayer::kBoth;
            fault.fraction = 1.0;
            fault.threshold_delta = delta;
            break;
        case 5: {
            const auto calibration =
                parser.get_bool("paper-calibration")
                    ? attack::VddCalibration::paper_reference()
                    : attack::VddCalibration::from_circuits(
                          circuits::Characterizer{circuits::CharacterizationConfig{}},
                          {0.8, 0.9, 1.0, 1.1, 1.2},
                          circuits::NeuronKind::kAxonHillock);
            fault.layer = attack::TargetLayer::kBoth;
            fault.fraction = 1.0;
            fault.threshold_delta = calibration.threshold_delta(vdd);
            fault.driver_gain = calibration.driver_gain(vdd);
            std::cout << "attack 5 @ VDD=" << vdd << " V -> threshold "
                      << fault.threshold_delta * 100.0 << "%, driver gain "
                      << fault.driver_gain << "\n";
            break;
        }
        default:
            std::cerr << "error: --attack must be 1-5\n";
            return 2;
    }

    std::cout << "training baseline...\n";
    const double baseline = suite.baseline_accuracy();
    std::cout << "baseline accuracy: " << baseline * 100.0 << "%\n"
              << "training under attack " << attack_id << "...\n";
    const attack::AttackOutcome outcome = suite.run(fault);
    std::cout << "attacked accuracy: " << outcome.accuracy * 100.0 << "%  ("
              << outcome.degradation_pct << "% relative)\n"
              << "excitatory spikes/sample: " << outcome.exc_spikes_per_sample
              << "\n";
    return 0;
}
