// Experiment runner: regenerate any paper figure by id.
//
//   $ ./experiment_runner --list
//   $ ./experiment_runner --id=fig8b
//   $ ./experiment_runner --id=fig9a --quick --csv=fig9a.csv
//
// The same registry backs the bench binaries; this tool is the interactive
// way to explore single experiments and export their data.
#include <fstream>
#include <iostream>

#include "core/experiments.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi experiment runner (paper figure registry)");
    parser.add_flag("list", "List all experiment ids and exit");
    parser.add_option("id", "baseline", "Experiment id to run (see --list)");
    parser.add_flag("quick", "Shrink the workload for a fast look");
    parser.add_option("samples", "1000", "Training samples (SNN experiments)");
    parser.add_option("neurons", "100", "Neurons per layer (SNN experiments)");
    parser.add_option("csv", "", "Also write the table to this CSV file");
    if (!parser.parse(argc, argv)) return 0;

    if (parser.get_bool("list")) {
        for (const auto& experiment : core::experiment_registry()) {
            std::cout << "  " << experiment.id << "  —  " << experiment.title
                      << " (" << experiment.description << ")\n";
        }
        return 0;
    }

    core::ExperimentOptions options;
    options.quick = parser.get_bool("quick");
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));

    try {
        const auto& experiment = core::find_experiment(parser.get("id"));
        const util::ResultTable table = experiment.run(options);
        std::cout << table;
        if (const std::string path = parser.get("csv"); !path.empty()) {
            std::ofstream out(path);
            if (!out) {
                std::cerr << "error: cannot write " << path << "\n";
                return 1;
            }
            out << table.to_csv();
            std::cout << "CSV written to " << path << "\n";
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n(use --list for available ids)\n";
        return 1;
    }
    return 0;
}
