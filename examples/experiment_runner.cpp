// Experiment runner: regenerate any paper figure by id or tag.
//
//   $ ./experiment_runner --list
//   $ ./experiment_runner --id=fig8b
//   $ ./experiment_runner --id=attack --quick           # a whole tag
//   $ ./experiment_runner --id=fig9a --quick --csv=fig9a.csv
//
// Interactive front-end of the same Session/scenario registry that backs
// the bench binaries and the `run` CLI: everything selected in one
// invocation shares trained baselines and circuit characterisations.
#include <fstream>
#include <iostream>

#include "core/scenario.hpp"
#include "core/session.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi experiment runner (scenario registry)");
    parser.add_flag("list", "List all experiment ids/tags and exit");
    parser.add_option("id", "baseline",
                      "Experiment id(s) and/or tag(s) to run (see --list)");
    parser.add_flag("quick", "Shrink the workload for a fast look");
    parser.add_flag("json", "Print each result as JSON instead of a table");
    parser.add_option("samples", "1000", "Training samples (SNN experiments)");
    parser.add_option("neurons", "100", "Neurons per layer (SNN experiments)");
    parser.add_option("csv", "", "Also write the table(s) to this CSV file");
    if (!parser.parse(argc, argv)) return 0;

    auto& registry = core::ScenarioRegistry::instance();
    if (parser.get_bool("list")) {
        for (const auto& spec : registry.all()) {
            std::cout << "  " << spec.id << "  —  " << spec.title << " ("
                      << spec.description << ")  [";
            for (std::size_t t = 0; t < spec.tags.size(); ++t)
                std::cout << (t ? "," : "") << spec.tags[t];
            std::cout << "]\n";
        }
        std::cout << "tags:";
        for (const auto& tag : registry.tag_names()) std::cout << " " << tag;
        std::cout << "\n";
        return 0;
    }

    core::RunOptions options;
    options.quick = parser.get_bool("quick");
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));

    std::string selector;
    for (const auto& token : parser.get_strings("id")) {
        if (!selector.empty()) selector += ",";
        selector += token;
    }
    try {
        core::Session session(options);
        const auto results = session.run_selector(selector);
        std::ofstream csv_out;
        const std::string path = parser.get("csv");
        if (!path.empty()) {
            csv_out.open(path);
            if (!csv_out) {
                std::cerr << "error: cannot write " << path << "\n";
                return 1;
            }
        }
        for (const auto& result : results) {
            if (parser.get_bool("json"))
                std::cout << result.to_json() << "\n";
            else
                std::cout << result.table;
            if (csv_out.is_open()) csv_out << result.table.to_csv();
        }
        if (csv_out.is_open()) std::cout << "CSV written to " << path << "\n";
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n(use --list for available ids)\n";
        return 1;
    }
    return 0;
}
