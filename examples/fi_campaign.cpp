// Fault-injection campaign walkthrough: drive the src/fi subsystem
// directly instead of through the scenario registry.
//
//   $ ./fi_campaign [--samples=300] [--neurons=50] [--sites=3]
//
// Shows the three layers of the subsystem:
//   1. the fault library — every registered FaultModel with its site kind;
//   2. the site enumerator — deterministic, seeded sampling of the
//      (layer x neuron, synapse) address space, straight off the topology
//      config (no network object needed);
//   3. the campaign engine — a sampled campaign off one shared trained
//      baseline, frozen into an immutable NetworkModel and evaluated by
//      cheap pre-faulted NetworkRuntime replicas in lockstep batches, with
//      the per-layer sensitivity map and critical-fault rates it produces.
#include <algorithm>
#include <iostream>

#include "core/session.hpp"
#include "fi/campaign.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi fault-injection campaign walkthrough");
    parser.add_option("samples", "300", "Training samples for the baseline");
    parser.add_option("neurons", "50", "Neurons per layer");
    parser.add_option("sites", "3", "Sampled fault sites per model (per layer)");
    if (!parser.parse(argc, argv)) return 0;

    util::set_log_level(util::LogLevel::kWarn);

    // 1. The fault taxonomy.
    std::cout << "fault library:\n";
    for (const auto& model : fi::standard_fault_library()) {
        std::cout << "  " << model->name() << " (" << fi::to_string(model->site_kind())
                  << (model->trains_under_fault() ? ", trains under fault" : "")
                  << ") — " << model->description() << "\n";
    }

    core::RunOptions options;
    options.quick = true;
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    // Keep the online-accuracy window meaningful for small sample counts.
    options.eval_window = std::min<std::size_t>(options.eval_window,
                                                options.train_samples / 2);
    core::Session session(options);

    // 2. A taste of the site space (topology-driven: only the config).
    auto suite = session.attack_suite();
    const snn::DiehlCookConfig& topology = suite->config().network;
    fi::SitePlan plan;
    plan.max_sites = static_cast<std::size_t>(parser.get_int("sites"));
    std::cout << "\nsampled neuron sites:";
    for (const auto& site : fi::enumerate_sites(topology, fi::SiteKind::kNeuron, plan))
        std::cout << " " << site.id();
    std::cout << "\nsampled synapse sites:";
    for (const auto& site : fi::enumerate_sites(topology, fi::SiteKind::kSynapse, plan))
        std::cout << " " << site.id();
    std::cout << "\n";

    // 3. The campaign: one baseline training frozen into a shared model,
    //    then one pre-faulted runtime per (cell, replica), batched in
    //    lockstep. Drift models retrain like the paper's attacks.
    fi::CampaignConfig config;
    config.sites = plan;
    config.eval_samples = 60;
    config.early_stop.enabled = false;
    config.early_stop.min_replicas = 2;
    fi::CampaignEngine engine(session, config);
    const auto campaign = engine.run();

    std::cout << "\nbaseline accuracy: " << campaign->baseline_accuracy_pct
              << "%\ncampaign: " << campaign->cells.size() << " cells, "
              << campaign->trainings << " train-under-fault runs, "
              << campaign->evaluations << " inference passes\n\n";
    std::cout << campaign->sensitivity_map("per-layer sensitivity map");
    std::cout << "\nsession cache: " << session.cache_hits() << " hit(s), "
              << session.cache_misses() << " miss(es) — the baseline trained once\n";
    return 0;
}
