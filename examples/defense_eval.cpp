// Defense evaluation: hardened circuits + the dummy-neuron detector.
//
//   $ ./defense_eval [--samples=500] [--skip-snn]
//
// Exercises the defense layer end-to-end as a thin Session client: the
// session's cached characterizer feeds the overhead accounting and the
// defense replays, and the shared attack suite means the baseline is
// trained once. Covers residual corruption of each hardened circuit, the
// accuracy it preserves, the §V overhead accounting, and the Fig. 10c
// detector sweep with its >= 10% decision rule.
#include <iostream>

#include "core/snnfi.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi defense evaluation");
    parser.add_option("samples", "500", "Training images for accuracy replay");
    parser.add_flag("skip-snn", "Only run the circuit-level parts");
    if (!parser.parse(argc, argv)) return 0;

    core::RunOptions options;
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    core::Session session(options);
    const auto characterizer = session.characterizer();

    // --- detector sweep (Fig. 10c) -------------------------------------
    defense::DummyNeuronDetector detector;
    std::cout << "dummy-neuron detector (>= "
              << detector.config().threshold_pct << "% deviation flags):\n";
    for (const auto& reading : detector.sweep({0.8, 0.9, 1.0, 1.1, 1.2})) {
        std::cout << "  VDD=" << reading.vdd << " V: " << reading.spike_count
                  << " spikes/100ms (" << reading.deviation_pct << "%) "
                  << (reading.flagged ? "FLAGGED" : "ok") << "\n";
    }

    // --- overhead accounting (§V) ---------------------------------------
    defense::OverheadAnalyzer analyzer(*characterizer);
    std::cout << "\ndefense overheads (measured vs paper):\n";
    for (const auto& report : analyzer.all()) {
        std::cout << "  " << report.defense << ": power "
                  << report.power_overhead_pct << "% (paper "
                  << report.paper_power_overhead_pct << "%), area "
                  << report.area_overhead_pct << "% (paper "
                  << report.paper_area_note << "%)\n";
    }

    if (parser.get_bool("skip-snn")) return 0;

    // --- accuracy replay under each defense ------------------------------
    auto suite = session.attack_suite();
    defense::DefenseSuite defenses(*suite, *characterizer);

    std::cout << "\ntraining baseline (" << options.train_samples
              << " samples)...\n";
    std::cout << "baseline accuracy: " << suite->baseline_accuracy() * 100.0
              << "%\n\naccuracy with each defense under a VDD=0.8 V attack:\n";
    const std::vector<double> vdds = {0.8};
    for (const auto& outcome : defenses.bandgap_vthr(circuits::BandgapModel{}, vdds))
        std::cout << "  bandgap-vthr:   " << outcome.accuracy * 100.0 << "% ("
                  << outcome.degradation_pct << "%)\n";
    for (const auto& outcome : defenses.transistor_sizing(32.0, vdds))
        std::cout << "  mp1-sizing:     " << outcome.accuracy * 100.0 << "% ("
                  << outcome.degradation_pct << "%)\n";
    for (const auto& outcome : defenses.comparator_first_stage(vdds))
        std::cout << "  comparator-ah:  " << outcome.accuracy * 100.0 << "% ("
                  << outcome.degradation_pct << "%)\n";
    for (const auto& outcome : defenses.robust_driver(vdds))
        std::cout << "  robust-driver:  " << outcome.accuracy * 100.0 << "% ("
                  << outcome.degradation_pct << "%)\n";
    return 0;
}
