// Circuit lab: simulate the analog neurons and dump waveforms.
//
//   $ ./circuit_lab --neuron=ah --vdd=1.0 --window-us=40 --csv=ah.csv
//
// Demonstrates the spice/circuits layers directly: builds a neuron
// netlist, runs a transient, prints spike statistics, and (optionally)
// writes the waveforms as CSV for plotting — the raw material of the
// paper's Figs. 3 and 4. The characterizer comes from a Session so a
// script poking at several operating points shares one instance.
#include <fstream>
#include <iostream>

#include "core/session.hpp"
#include "spice/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi circuit lab: neuron transient simulation");
    parser.add_option("neuron", "ah", "Neuron model: 'ah' (Axon Hillock) or 'if'");
    parser.add_option("vdd", "1.0", "Supply voltage [V] (paper range 0.8-1.2)");
    parser.add_option("window-us", "40", "Simulation window [us]");
    parser.add_option("csv", "", "Write waveforms to this CSV file");
    if (!parser.parse(argc, argv)) return 0;

    const double vdd = parser.get_double("vdd");
    const double window = parser.get_double("window-us") * 1e-6;
    const bool axon = parser.get("neuron") == "ah";

    core::Session session;
    const auto& characterizer = *session.characterizer();
    const spice::TransientResult result =
        axon ? characterizer.axon_hillock_waveforms(vdd, window)
             : characterizer.vamp_if_waveforms(vdd, window);

    const auto spikes = result.crossings("V(vout)", 0.5 * vdd, +1);
    std::cout << (axon ? "Axon Hillock" : "Voltage-amplifier I&F") << " @ VDD = "
              << vdd << " V\n"
              << "  simulated " << result.num_points() << " timepoints over "
              << window * 1e6 << " us\n"
              << "  output spikes: " << spikes.size() << "\n";
    if (!spikes.empty())
        std::cout << "  first spike at " << spikes.front() * 1e6 << " us\n";
    if (spikes.size() >= 2)
        std::cout << "  mean period "
                  << (spikes.back() - spikes.front()) /
                         static_cast<double>(spikes.size() - 1) * 1e6
                  << " us\n";
    std::cout << "  Vmem range [" << result.min_value("V(vmem)") << ", "
              << result.max_value("V(vmem)") << "] V\n";

    const double threshold = characterizer.measure_threshold(
        axon ? circuits::NeuronKind::kAxonHillock : circuits::NeuronKind::kVampIf,
        vdd);
    std::cout << "  membrane threshold (DC bisection): " << threshold << " V\n";

    if (const std::string path = parser.get("csv"); !path.empty()) {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "error: cannot write " << path << "\n";
            return 1;
        }
        out << result.to_csv({"V(vmem)", "V(vout)"}, /*stride=*/4);
        std::cout << "  waveforms written to " << path << "\n";
    }
    return 0;
}
