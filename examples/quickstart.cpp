// Quickstart: train the Diehl&Cook SNN on digits, attack it, defend it.
//
//   $ ./quickstart [--samples=500] [--neurons=100]
//
// Walks through the library in ~a minute, driving everything through one
// core::Session — the shared engine behind the bench binaries and the
// `run` CLI. The session caches the dataset and the trained baseline, so
// the three stages below train the attack-free network exactly once:
//   1. train an attack-free network and report its accuracy;
//   2. inject the paper's worst-case fault (Attack 4: -20% threshold on
//      both layers) and watch the accuracy collapse;
//   3. re-run with the bandgap-referenced threshold defense and watch the
//      accuracy recover.
#include <iostream>

#include "core/snnfi.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi quickstart: train -> attack -> defend");
    parser.add_option("samples", "500", "Number of training images");
    parser.add_option("neurons", "100", "Neurons per layer");
    if (!parser.parse(argc, argv)) return 0;

    // 1. One Session holds the workload knobs and every shared artifact
    //    (dataset, trained baseline, circuit characterisations).
    core::RunOptions options;
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    core::Session session(options);

    auto suite = session.attack_suite();
    std::cout << "dataset: " << suite->dataset().size() << " images of "
              << suite->dataset().image_size << " pixels\n";

    std::cout << "\n[1/3] training attack-free baseline...\n";
    const double baseline = suite->baseline_accuracy();
    std::cout << "      baseline accuracy: " << baseline * 100.0 << "%\n";

    // 2. Worst-case white-box attack (paper Fig. 8c): -20% threshold fault
    //    on 100% of both neuron layers.
    std::cout << "\n[2/3] injecting Attack 4 (-20% threshold, both layers)...\n";
    attack::FaultSpec fault;
    fault.layer = attack::TargetLayer::kBoth;
    fault.fraction = 1.0;
    fault.threshold_delta = -0.20;
    const attack::AttackOutcome attacked = suite->run(fault);
    std::cout << "      attacked accuracy: " << attacked.accuracy * 100.0 << "% ("
              << attacked.degradation_pct << "% vs baseline)\n";

    // 3. Defense: a bandgap-referenced threshold limits the corruption the
    //    supply attack can induce to +/-0.56%.
    std::cout << "\n[3/3] enabling the bandgap-Vthr defense...\n";
    const circuits::BandgapModel bandgap;
    attack::FaultSpec defended = fault;
    defended.threshold_delta = bandgap.deviation_pct(0.8) / 100.0;
    const attack::AttackOutcome recovered = suite->run(defended);
    std::cout << "      defended accuracy: " << recovered.accuracy * 100.0 << "% ("
              << recovered.degradation_pct << "% vs baseline)\n";

    std::cout << "\nSummary: " << baseline * 100.0 << "% -> "
              << attacked.accuracy * 100.0 << "% under attack -> "
              << recovered.accuracy * 100.0 << "% with the defense.\n"
              << "(session cache: " << session.cache_hits() << " hit(s), "
              << session.cache_misses() << " miss(es) — the baseline was "
              << "trained once)\n";
    return 0;
}
