// Unified experiment runner — the batch front-end of the Session engine.
//
//   $ run --list
//   $ run --experiment=fig8b                      # one figure
//   $ run --experiment=attack --quick --json      # every attack, shared
//                                                 # baseline, JSON output
//   $ run --experiment=fig5b,defense --workers=4
//
// All selected scenarios execute through ONE Session: trained baselines,
// datasets and circuit characterisations are cached and shared, and the
// summary line (or the "cache" object in --json mode) shows the reuse.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/scenario.hpp"
#include "core/session.hpp"
#include "fi/catalog.hpp"
#include "fi/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

/// Flag value, falling back to an environment variable so CI wrappers can
/// request telemetry without editing command lines.
std::string with_env_fallback(std::string value, const char* env_name) {
    if (value.empty()) {
        if (const char* env = std::getenv(env_name)) value = env;
    }
    return value;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser(
        "snnfi unified experiment runner (Session + scenario registry)");
    parser.add_option("experiment", "all",
                      "Comma-separated experiment ids and/or tags "
                      "(see --list; 'all' runs the whole registry)");
    parser.add_flag("list", "List experiment ids and tags, then exit");
    parser.add_flag("quick", "Shrink workloads (smoke runs, CI)");
    parser.add_flag("json", "Emit one JSON document instead of ASCII tables");
    parser.add_flag("csv", "Also print CSV rows under each table");
    parser.add_option("samples", "1000", "Training samples for SNN experiments");
    parser.add_option("neurons", "100", "Neurons per layer for SNN experiments");
    parser.add_option("threads", "0",
                      "Session thread-pool size (0 = SNNFI_THREADS env or all "
                      "cores)");
    parser.add_option("workers", "0", "Deprecated alias for --threads");
    parser.add_option("cache-capacity", "0",
                      "Artifact-cache entry cap with LRU eviction (0 = unbounded)");
    parser.add_option("store-dir", "",
                      "Persistent artifact store directory shared across "
                      "processes (default: SNNFI_STORE_DIR env; empty = no "
                      "store)");
    parser.add_option("store-max-bytes", "0",
                      "On-disk store size cap, LRU-evicted (0 = unbounded)");
    parser.add_option("campaign-dir", "",
                      "Merge a sharded campaign directory (see the worker "
                      "binary) and print its tables instead of running "
                      "experiments");
    parser.add_option("trace-out", "",
                      "Write a Chrome trace-event JSON file (chrome://tracing "
                      "/ Perfetto) and enable telemetry (default: SNNFI_TRACE "
                      "env)");
    parser.add_option("metrics-out", "",
                      "Write the metrics-registry JSON document and enable "
                      "telemetry (default: SNNFI_METRICS env)");
    try {
        if (!parser.parse(argc, argv)) return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n" << parser.usage();
        return 2;
    }

    auto& registry = core::ScenarioRegistry::instance();
    if (parser.get_bool("list")) {
        util::ResultTable table("registered experiments",
                                {"id", "tags", "description"});
        for (const auto& spec : registry.all()) {
            std::string tags;
            for (std::size_t t = 0; t < spec.tags.size(); ++t)
                tags += (t ? "," : "") + spec.tags[t];
            table.add_row({spec.id, tags,
                           spec.description.empty() ? spec.title : spec.description});
        }
        std::cout << table;
        std::cout << "tags:";
        for (const auto& tag : registry.tag_names()) std::cout << " " << tag;
        std::cout << "\n(select with --experiment=<id|tag>[,<id|tag>...]; "
                     "'all' runs everything)\n";
        return 0;
    }

    util::set_log_level(util::LogLevel::kWarn);
    const std::string trace_out =
        with_env_fallback(parser.get("trace-out"), "SNNFI_TRACE");
    const std::string metrics_out =
        with_env_fallback(parser.get("metrics-out"), "SNNFI_METRICS");
    if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
    const auto export_telemetry = [&] {
        if (!trace_out.empty() && !obs::write_chrome_trace(trace_out))
            std::cerr << "warning: cannot write trace to " << trace_out << "\n";
        if (!metrics_out.empty() && !obs::write_metrics(metrics_out))
            std::cerr << "warning: cannot write metrics to " << metrics_out
                      << "\n";
    };

    core::RunOptions options;
    options.quick = parser.get_bool("quick");
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    const auto threads = static_cast<std::size_t>(parser.get_int("threads"));
    options.max_workers =
        threads != 0 ? threads : static_cast<std::size_t>(parser.get_int("workers"));
    options.cache_capacity =
        static_cast<std::size_t>(parser.get_int("cache-capacity"));
    options.store_dir = parser.get("store-dir");
    options.store_max_bytes =
        static_cast<std::uint64_t>(parser.get_int("store-max-bytes"));

    // Merge mode: reassemble a sharded campaign directory into the full
    // result (bit-identical to a single-process run of the scenario) and
    // present it — no experiments execute.
    const std::string campaign_dir = parser.get("campaign-dir");
    if (!campaign_dir.empty()) {
        try {
            const fi::CampaignManifest manifest =
                fi::read_manifest(campaign_dir);
            // Progress/straggler view first — printed before the merge is
            // attempted, so incomplete campaigns still show which shard is
            // behind (or stalled) instead of only the merge error.
            const util::ResultTable progress =
                fi::shard_progress_table(campaign_dir);
            if (!parser.get_bool("json")) std::cout << progress;
            const fi::CampaignResult merged =
                fi::merge_campaign_dir(campaign_dir);
            const std::string title =
                fi::find_campaign_entry(manifest.scenario).title;
            if (parser.get_bool("json")) {
                std::cout << "{\"scenario\":\""
                          << util::json_escape(manifest.scenario)
                          << "\",\"shards\":" << manifest.shards
                          << ",\"progress\":" << progress.to_json()
                          << ",\"campaign\":" << merged.to_json() << "}\n";
            } else {
                const util::ResultTable table = merged.detail_table(title);
                std::cout << table;
                if (parser.get_bool("csv")) std::cout << table.to_csv();
                std::cout << merged.sensitivity_map(title + " — sensitivity map");
                std::cout << "[" << manifest.scenario << " merged from "
                          << manifest.shards << " shard(s), " << merged.cells.size()
                          << " cell(s)]\n";
            }
            export_telemetry();
            return 0;
        } catch (const std::exception& e) {
            std::cerr << "error: " << e.what() << "\n";
            export_telemetry();
            return 1;
        }
    }

    // Repeated --experiment flags accumulate, so join all occurrences.
    std::string selector;
    for (const auto& token : parser.get_strings("experiment")) {
        if (!selector.empty()) selector += ",";
        selector += token;
    }
    std::vector<const core::ScenarioSpec*> selection;
    try {
        selection = registry.select(selector);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n(use --list for ids and tags)\n";
        return 1;
    }
    if (selection.empty()) {
        std::cerr << "error: selector matched no experiments\n";
        return 1;
    }

    core::Session session(options);
    const std::vector<core::RunResult> results = session.run_many(selection);

    if (parser.get_bool("json")) {
        std::cout << core::to_json(results, session) << "\n";
        export_telemetry();
        return 0;
    }

    for (const auto& result : results) {
        std::cout << result.table;
        if (parser.get_bool("csv")) std::cout << result.table.to_csv();
        std::cout << "[" << result.id << " in " << result.seconds << " s (setup "
                  << result.setup_seconds << " s + run " << result.run_seconds
                  << " s), cache " << result.cache_hits << " hit(s) / "
                  << result.cache_misses << " miss(es)]\n\n";
    }
    // Wall-time summary across the batch: where the time went, and how much
    // of it a warm cache/store would have saved (the setup column).
    util::ResultTable timing("experiment timing",
                             {"id", "seconds", "setup_s", "run_s", "cache_hits",
                              "cache_misses"});
    for (const auto& result : results) {
        timing.add_row({result.id, result.seconds, result.setup_seconds,
                        result.run_seconds,
                        static_cast<double>(result.cache_hits),
                        static_cast<double>(result.cache_misses)});
    }
    std::cout << timing;
    std::cout << "session cache: " << session.cache_hits() << " hit(s), "
              << session.cache_misses() << " miss(es), " << session.cache_evictions()
              << " eviction(s), " << session.cache_entries() << " live entr"
              << (session.cache_entries() == 1 ? "y" : "ies") << " across "
              << results.size() << " experiment(s)\n";
    export_telemetry();
    return 0;
}
