// bench_compare: gates a benchmark JSON against a checked-in baseline
// trajectory instead of a hardcoded magic ratio.
//
//   $ ./bench_compare --bench=BENCH_glitch.json \
//                     --baseline=../bench/baselines/BENCH_glitch.json \
//                     --metric=throughput_ratio --tolerance=0.25
//
// Every occurrence of each --metric in both files is collected (nested
// values included, e.g. the per-grid-point "speedup" entries of
// BENCH_runtime.json) and reduced with min — the worst point of the run.
// Higher is better; the gate is
//
//   min(current) >= min(baseline) * (1 - tolerance)
//
// so the bar moves with the committed trajectory: improving a benchmark
// and refreshing its baseline tightens the gate, nobody has to retune a
// hardcoded constant. Gate dimensionless ratios (speedup ratios), not
// absolute wall-clock numbers — those do not transfer across runners.
//
// Exit codes: 0 pass, 1 regression, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Every number appearing as `"name": <number>` anywhere in the JSON text
/// (a targeted scan — the bench envelopes are flat enough that a full
/// parser would be overkill).
std::vector<double> extract(const std::string& json, const std::string& name) {
    std::vector<double> values;
    const std::string needle = "\"" + name + "\":";
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos])))
            ++pos;
        std::size_t end = pos;
        const auto numeric = [&](char c) {
            return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                   c == '+' || c == '.' || c == 'e' || c == 'E';
        };
        while (end < json.size() && numeric(json[end])) ++end;
        if (end > pos) values.push_back(std::stod(json.substr(pos, end - pos)));
        pos = end;
    }
    return values;
}

double worst(const std::vector<double>& values) {
    return *std::min_element(values.begin(), values.end());
}

}  // namespace

int main(int argc, char** argv) {
    snnfi::util::ArgParser parser(
        "Gate a benchmark JSON against a checked-in baseline trajectory");
    parser.add_option("bench", "", "Current benchmark JSON path");
    parser.add_option("baseline", "", "Checked-in baseline JSON path");
    parser.add_option("metric", "",
                      "Metric name(s), repeatable/comma-separated; every JSON "
                      "occurrence is collected, min-reduced, higher is better");
    parser.add_option("tolerance", "0.25",
                      "Allowed fractional regression vs the baseline");
    try {
        if (!parser.parse(argc, argv)) return 0;
        const std::string bench_path = parser.get("bench");
        const std::string baseline_path = parser.get("baseline");
        const std::vector<std::string> metrics = parser.get_strings("metric");
        const double tolerance = parser.get_double("tolerance");
        if (bench_path.empty() || baseline_path.empty() || metrics.empty())
            throw std::invalid_argument("--bench, --baseline and --metric are required");
        if (tolerance < 0.0 || tolerance >= 1.0)
            throw std::invalid_argument("--tolerance must be in [0, 1)");

        const std::string bench = read_file(bench_path);
        const std::string baseline = read_file(baseline_path);

        bool ok = true;
        for (const std::string& metric : metrics) {
            const std::vector<double> current = extract(bench, metric);
            const std::vector<double> reference = extract(baseline, metric);
            if (current.empty() || reference.empty()) {
                std::cerr << "error: metric '" << metric << "' missing from "
                          << (current.empty() ? bench_path : baseline_path) << "\n";
                return 2;
            }
            const double have = worst(current);
            const double want = worst(reference) * (1.0 - tolerance);
            const bool pass = have >= want;
            ok = ok && pass;
            std::cout << (pass ? "ok  " : "FAIL") << "  " << metric << ": " << have
                      << " (baseline " << worst(reference) << ", gate >= " << want
                      << ", " << current.size() << " point(s))\n";
        }
        if (!ok) {
            std::cerr << "bench_compare: regression against " << baseline_path
                      << " — investigate, or refresh the baseline if the "
                         "change is intentional\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n" << parser.usage();
        return 2;
    }
}
