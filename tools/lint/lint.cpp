#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace snnfi::lint {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the rules care about staying whole. Longest
/// match first; everything else falls back to a single character.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
    std::vector<Token> tokens;
    std::size_t i = 0;
    std::size_t line = 1;
    bool in_preproc = false;
    const std::size_t n = source.size();

    const auto push = [&](TokenKind kind, std::string text) {
        tokens.push_back(Token{kind, std::move(text), line, in_preproc});
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            // A preprocessor directive ends at an unescaped newline.
            if (in_preproc && (tokens.empty() || i == 0 || source[i - 1] != '\\'))
                in_preproc = false;
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n') ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n') ++line;
                ++i;
            }
            i = std::min(n, i + 2);
            continue;
        }
        // Preprocessor directive start.
        if (c == '#' && (tokens.empty() || tokens.back().line != line || in_preproc)) {
            in_preproc = true;
            push(TokenKind::kPunct, "#");
            ++i;
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && source[j] != '(') delim += source[j++];
            const std::string closer = ")" + delim + "\"";
            const std::size_t end = source.find(closer, j);
            const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
            for (std::size_t k = i; k < stop; ++k)
                if (source[k] == '\n') ++line;
            push(TokenKind::kString, std::string(source.substr(i, stop - i)));
            i = stop;
            continue;
        }
        // String/char literals (with escape handling).
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && source[j] != quote) {
                if (source[j] == '\\' && j + 1 < n) ++j;
                if (source[j] == '\n') ++line;
                ++j;
            }
            j = std::min(n, j + 1);
            push(quote == '"' ? TokenKind::kString : TokenKind::kChar,
                 std::string(source.substr(i, j - i)));
            i = j;
            continue;
        }
        if (ident_start(c)) {
            std::size_t j = i;
            while (j < n && ident_char(source[j])) ++j;
            push(TokenKind::kIdentifier, std::string(source.substr(i, j - i)));
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t j = i;
            while (j < n && (ident_char(source[j]) || source[j] == '.' ||
                             ((source[j] == '+' || source[j] == '-') && j > i &&
                              (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                               source[j - 1] == 'p' || source[j - 1] == 'P'))))
                ++j;
            push(TokenKind::kNumber, std::string(source.substr(i, j - i)));
            i = j;
            continue;
        }
        // Punctuator: longest multi-char match, else single char.
        std::string_view rest = source.substr(i);
        std::string_view matched;
        for (const std::string_view p : kPuncts) {
            if (rest.substr(0, p.size()) == p) {
                matched = p;
                break;
            }
        }
        if (matched.empty()) matched = rest.substr(0, 1);
        push(TokenKind::kPunct, std::string(matched));
        i += matched.size();
    }
    return tokens;
}

bool FileContext::allows(const std::string& rule, std::size_t line) const {
    if (allowed_file.count(rule)) return true;
    const auto it = allowed.find(line);
    return it != allowed.end() && it->second.count(rule) != 0;
}

namespace {

/// Extracts `allow(...)` / `allow-file(...)` rule lists from one comment
/// body and records them for `line` (and `line + 1` when the comment is
/// the only content on its line).
void mine_suppressions(FileContext& ctx, std::string_view comment,
                       std::size_t line, bool comment_only_line) {
    const std::string_view kMarker = "snnfi-lint:";
    std::size_t at = comment.find(kMarker);
    if (at == std::string_view::npos) return;
    std::string_view body = comment.substr(at + kMarker.size());
    const bool file_wide = body.find("allow-file(") != std::string_view::npos;
    const std::string_view open_marker = file_wide ? "allow-file(" : "allow(";
    const std::size_t open = body.find(open_marker);
    if (open == std::string_view::npos) return;
    const std::size_t begin = open + open_marker.size();
    const std::size_t close = body.find(')', begin);
    if (close == std::string_view::npos) return;
    std::string rules(body.substr(begin, close - begin));
    std::replace(rules.begin(), rules.end(), ',', ' ');
    std::istringstream stream(rules);
    std::string rule;
    while (stream >> rule) {
        if (file_wide) {
            ctx.allowed_file.insert(rule);
        } else {
            ctx.allowed[line].insert(rule);
            if (comment_only_line) ctx.allowed[line + 1].insert(rule);
        }
    }
}

void collect_suppressions(FileContext& ctx) {
    std::istringstream stream(ctx.source);
    std::string text;
    std::size_t line = 0;
    while (std::getline(stream, text)) {
        ++line;
        const std::size_t comment = text.find("//");
        if (comment == std::string::npos) continue;
        const std::size_t content = text.find_first_not_of(" \t");
        const bool comment_only = content == comment;
        mine_suppressions(ctx, std::string_view(text).substr(comment), line,
                          comment_only);
    }
}

}  // namespace

FileContext load_file(const std::filesystem::path& full_path, std::string path) {
    std::ifstream in(full_path, std::ios::binary);
    if (!in)
        throw std::runtime_error("snnfi-lint: cannot read " + full_path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    FileContext ctx;
    ctx.path = std::move(path);
    std::replace(ctx.path.begin(), ctx.path.end(), '\\', '/');
    ctx.source = buffer.str();
    ctx.tokens = tokenize(ctx.source);
    collect_suppressions(ctx);
    return ctx;
}

void lint_file(const FileContext& file, LintResult& result) {
    for (const Rule* rule : all_rules()) {
        std::vector<Finding> raw;
        rule->run(file, raw);
        for (Finding& finding : raw) {
            if (file.allows(finding.rule, finding.line))
                ++result.suppressed;
            else
                result.findings.push_back(std::move(finding));
        }
    }
    ++result.files_scanned;
}

namespace {

bool lintable(const std::filesystem::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

LintResult lint_paths(const std::filesystem::path& root,
                      const std::vector<std::string>& paths) {
    std::vector<std::filesystem::path> files;
    for (const std::string& entry : paths) {
        const std::filesystem::path full = root / entry;
        if (std::filesystem::is_directory(full)) {
            for (const auto& item :
                 std::filesystem::recursive_directory_iterator(full)) {
                if (item.is_regular_file() && lintable(item.path()))
                    files.push_back(item.path());
            }
        } else if (std::filesystem::is_regular_file(full)) {
            files.push_back(full);
        } else {
            throw std::runtime_error("snnfi-lint: no such path: " + full.string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    LintResult result;
    for (const std::filesystem::path& file : files) {
        const std::string rel =
            std::filesystem::relative(file, root).generic_string();
        const FileContext ctx = load_file(file, rel);
        lint_file(ctx, result);
    }
    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return result;
}

namespace {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_json(const LintResult& result, const std::string& root) {
    std::ostringstream os;
    os << "{\n  \"root\": \"" << json_escape(root) << "\",\n"
       << "  \"files_scanned\": " << result.files_scanned << ",\n"
       << "  \"suppressed\": " << result.suppressed << ",\n"
       << "  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding& f = result.findings[i];
        os << (i == 0 ? "\n" : ",\n")
           << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
           << f.line << ", \"rule\": \"" << json_escape(f.rule)
           << "\", \"message\": \"" << json_escape(f.message) << "\"}";
    }
    os << (result.findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

}  // namespace snnfi::lint
