// snnfi-lint — the repo's custom static analyzer.
//
// The library's determinism contract (campaigns bit-identical across
// shard counts, thread counts, kill+resume, telemetry on/off) rests on
// a handful of coding invariants that no compiler flag checks: no
// ambient randomness or wall-clock reads outside util/, no
// hash-ordered container iteration feeding emitted output, no raw
// console writes outside the logging/CLI seams, no type punning
// outside the store's blob codec, no mutable globals outside the
// registered singletons, and self-contained headers. snnfi-lint
// encodes those invariants as machine-checked rules over a light C++
// token stream, so a future PR cannot erode them silently.
//
// A finding on line N is suppressed by an inline comment on the same
// line, or by a comment-only line directly above it:
//
//     foo();  // snnfi-lint: allow(rule-id) — why this one is fine
//
// Whole files opt out with `// snnfi-lint: allow-file(rule-id)`.
// Suppressions are part of the reviewed source, so every exception to
// an invariant carries its justification next to the code.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace snnfi::lint {

// --- token stream -------------------------------------------------------

enum class TokenKind {
    kIdentifier,  ///< identifiers and keywords (no keyword table needed)
    kNumber,
    kString,  ///< string literal, including raw strings
    kChar,
    kPunct,  ///< one operator/punctuator per token (e.g. "::", "->", "{")
};

struct Token {
    TokenKind kind;
    std::string text;
    std::size_t line;     ///< 1-based
    bool preprocessor;    ///< true for tokens inside a #-directive line
};

/// Lexes C++ source into significant tokens: comments and whitespace are
/// dropped, literals are kept whole, multi-char operators ("::", "->",
/// "<<") stay single tokens, and preprocessor lines (with continuations)
/// are tokenized with `preprocessor` set.
std::vector<Token> tokenize(std::string_view source);

// --- files and suppressions ---------------------------------------------

/// One analyzed file: tokens plus the suppression map mined from its
/// comments. `path` is kept relative to the lint root so rule scoping
/// ("src/", "src/util/") works the same for the real tree and for the
/// fixture mini-trees under tests/lint/.
struct FileContext {
    std::string path;  ///< root-relative, '/'-separated
    std::string source;
    std::vector<Token> tokens;
    /// line -> rule ids allowed on that line (populated for the comment's
    /// own line and, for comment-only lines, the next line as well).
    std::map<std::size_t, std::set<std::string>> allowed;
    std::set<std::string> allowed_file;  ///< allow-file(rule) ids

    bool allows(const std::string& rule, std::size_t line) const;
};

/// Loads and tokenizes one file. `path` is the root-relative name
/// recorded in findings; `full_path` is where the bytes live.
FileContext load_file(const std::filesystem::path& full_path, std::string path);

// --- findings and rules -------------------------------------------------

struct Finding {
    std::string file;
    std::size_t line;
    std::string rule;
    std::string message;
};

class Rule {
public:
    virtual ~Rule() = default;
    virtual const char* id() const = 0;
    virtual const char* description() const = 0;
    /// Appends findings for `file`; suppression filtering happens later.
    virtual void run(const FileContext& file, std::vector<Finding>& out) const = 0;
};

/// The built-in rule set, in stable report order.
const std::vector<const Rule*>& all_rules();

// --- driver -------------------------------------------------------------

struct LintResult {
    std::vector<Finding> findings;   ///< surviving (unsuppressed) findings
    std::size_t files_scanned = 0;
    std::size_t suppressed = 0;      ///< findings silenced by allow()
};

/// Runs every rule over one loaded file.
void lint_file(const FileContext& file, LintResult& result);

/// Walks `paths` (files or directories, relative to `root`) for
/// .hpp/.cpp sources, lints each, and aggregates. Files are visited in
/// sorted path order so reports are deterministic.
LintResult lint_paths(const std::filesystem::path& root,
                      const std::vector<std::string>& paths);

/// Renders `result` as the JSON findings report (stable key order).
std::string to_json(const LintResult& result, const std::string& root);

}  // namespace snnfi::lint
