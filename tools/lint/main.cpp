// snnfi-lint CLI.
//
//   snnfi-lint [--root=DIR] [--json] [--out=FILE] [--list-rules] [PATH...]
//
// PATHs (default: src) are files or directories relative to --root
// (default: the current directory). Exit code 0 = clean, 1 = findings,
// 2 = usage or I/O error. `--json` writes the machine-readable findings
// report (CI uploads it as an artifact) instead of the human lines.
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(std::ostream& os, int code) {
    os << "usage: snnfi-lint [--root=DIR] [--json] [--out=FILE] [--list-rules] "
          "[PATH...]\n"
          "  Lints PATHs (default: src) relative to --root (default: .)\n"
          "  against the repo's determinism/correctness rules.\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    std::filesystem::path root = ".";
    std::string out_file;
    bool json = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out_file = arg.substr(6);
        } else if (arg == "--list-rules") {
            for (const snnfi::lint::Rule* rule : snnfi::lint::all_rules())
                std::cout << rule->id() << "\n    " << rule->description() << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "snnfi-lint: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) paths.push_back("src");

    snnfi::lint::LintResult result;
    try {
        result = snnfi::lint::lint_paths(root, paths);
    } catch (const std::exception& error) {
        std::cerr << error.what() << "\n";
        return 2;
    }

    std::string report;
    if (json) {
        report = snnfi::lint::to_json(result, root.generic_string());
    } else {
        for (const snnfi::lint::Finding& f : result.findings)
            report += f.file + ":" + std::to_string(f.line) + ": [" + f.rule +
                      "] " + f.message + "\n";
        report += "snnfi-lint: " + std::to_string(result.files_scanned) +
                  " files, " + std::to_string(result.findings.size()) +
                  " findings, " + std::to_string(result.suppressed) +
                  " suppressed\n";
    }

    if (out_file.empty()) {
        std::cout << report;
    } else {
        std::ofstream out(out_file, std::ios::trunc);
        if (!out) {
            std::cerr << "snnfi-lint: cannot write " << out_file << "\n";
            return 2;
        }
        out << report;
        // Keep the human summary visible even when the report goes to a file.
        std::cerr << "snnfi-lint: " << result.files_scanned << " files, "
                  << result.findings.size() << " findings, " << result.suppressed
                  << " suppressed -> " << out_file << "\n";
    }
    return result.findings.empty() ? 0 : 1;
}
