// The built-in snnfi-lint rules. Each one encodes a repo invariant; the
// messages say what to do instead, and the scoping mirrors the layout
// conventions (src/ is the library, src/util/ owns randomness/time/log,
// src/store/{blob,store}.cpp are the blob codec).
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "lint.hpp"

namespace snnfi::lint {

namespace {

bool starts_with(const std::string& text, std::string_view prefix) {
    return text.compare(0, prefix.size(), prefix) == 0;
}

bool in_src(const FileContext& file) { return starts_with(file.path, "src/"); }
bool in_util(const FileContext& file) { return starts_with(file.path, "src/util/"); }

/// True when tokens[i] is reached through member access (`x.rand`,
/// `p->time`) — those are the project's own members, not the std symbol.
bool member_access(const std::vector<Token>& tokens, std::size_t i) {
    if (i == 0) return false;
    const std::string& prev = tokens[i - 1].text;
    return prev == "." || prev == "->";
}

/// True when tokens[i] is explicitly qualified (`std::time`, `::clock`).
bool qualified(const std::vector<Token>& tokens, std::size_t i) {
    return i > 0 && tokens[i - 1].text == "::";
}

// --- nondeterministic-source --------------------------------------------
//
// Campaign results must be a pure function of (config, seed). All
// randomness flows through util::Rng's seed streams and all timing
// through steady_clock (telemetry only); ambient entropy or wall-clock
// reads anywhere else silently break bit-identical resume/merge.
class NondeterministicSourceRule final : public Rule {
public:
    const char* id() const override { return "nondeterministic-source"; }
    const char* description() const override {
        return "ambient randomness / wall-clock time outside src/util/ "
               "(use util::Rng seed streams; steady_clock for durations)";
    }
    void run(const FileContext& file, std::vector<Finding>& out) const override {
        if (!in_src(file) || in_util(file)) return;
        // Type-like names are distinctive enough to flag on sight.
        static const std::set<std::string> kTypes{
            "random_device", "mt19937", "mt19937_64", "default_random_engine",
            "system_clock", "high_resolution_clock",
        };
        // Function-like names only count when actually called (a data
        // member *named* `rand` is someone else's problem).
        static const std::set<std::string> kCalls{
            "rand", "srand", "gettimeofday", "timespec_get", "localtime",
            "gmtime",
        };
        // `time`/`clock` are common member names; only the std-qualified
        // call forms are unambiguous enough to flag.
        static const std::set<std::string> kQualifiedCalls{"time", "clock"};
        const auto& tokens = file.tokens;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i].kind != TokenKind::kIdentifier || tokens[i].preprocessor)
                continue;
            if (member_access(tokens, i)) continue;
            const bool called =
                i + 1 < tokens.size() && tokens[i + 1].text == "(";
            const bool hit =
                kTypes.count(tokens[i].text) != 0 ||
                (called && kCalls.count(tokens[i].text) != 0) ||
                (called && qualified(tokens, i) &&
                 kQualifiedCalls.count(tokens[i].text) != 0);
            if (hit)
                out.push_back({file.path, tokens[i].line, id(),
                               "'" + tokens[i].text +
                                   "' is a nondeterministic source; campaigns "
                                   "must derive all randomness from util::Rng "
                                   "seed streams and all timing from "
                                   "steady_clock"});
        }
    }
};

// --- unordered-iteration ------------------------------------------------
//
// unordered_{map,set} iteration order varies across libstdc++ versions,
// ASLR, and insertion history. Anything that could feed a ResultTable,
// run --json, or a JSONL checkpoint must iterate in a defined order, so
// the library simply bans the unordered containers: use std::map/std::set
// (the maps here are tiny), or suppress with a proof that the order
// never escapes.
class UnorderedIterationRule final : public Rule {
public:
    const char* id() const override { return "unordered-iteration"; }
    const char* description() const override {
        return "std::unordered_{map,set} in the library (hash order leaks "
               "into emitted tables/JSON/JSONL; use ordered containers)";
    }
    void run(const FileContext& file, std::vector<Finding>& out) const override {
        if (!in_src(file)) return;
        static const std::set<std::string> kUnordered{
            "unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset"};
        for (const Token& token : file.tokens) {
            if (token.kind != TokenKind::kIdentifier || token.preprocessor)
                continue;
            if (kUnordered.count(token.text))
                out.push_back({file.path, token.line, id(),
                               "'" + token.text +
                                   "' iterates in hash order, which is not "
                                   "stable across runs; emitted output must "
                                   "come from ordered containers"});
        }
    }
};

// --- raw-stream ---------------------------------------------------------
//
// The library reports through return values and util::log (serialized,
// monotonic-stamped records); only the CLIs own stdout. A stray
// std::cout in src/ interleaves with worker logs and corrupts --json.
class RawStreamRule final : public Rule {
public:
    const char* id() const override { return "raw-stream"; }
    const char* description() const override {
        return "raw console I/O outside src/util/ (route through util::log "
               "or return data to the CLI layer)";
    }
    void run(const FileContext& file, std::vector<Finding>& out) const override {
        if (!in_src(file) || in_util(file)) return;
        static const std::set<std::string> kStreams{"cout", "cerr", "clog",
                                                    "printf", "fprintf", "puts",
                                                    "putchar"};
        const auto& tokens = file.tokens;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i].kind != TokenKind::kIdentifier || tokens[i].preprocessor)
                continue;
            if (member_access(tokens, i)) continue;
            if (kStreams.count(tokens[i].text))
                out.push_back({file.path, tokens[i].line, id(),
                               "'" + tokens[i].text +
                                   "' writes to the console from library "
                                   "code; use util::log or return the data"});
        }
    }
};

// --- type-punning -------------------------------------------------------
//
// Byte-level reinterpretation is confined to the store's blob codec,
// where layout is an explicit, versioned, checksummed contract. Anywhere
// else, reinterpret_cast/memcpy punning hides endianness and aliasing
// assumptions — use std::bit_cast (value punning) or the codec.
class TypePunningRule final : public Rule {
public:
    const char* id() const override { return "type-punning"; }
    const char* description() const override {
        return "reinterpret_cast/memcpy outside the src/store blob codec "
               "(use std::bit_cast or store::Blob{Writer,Reader})";
    }
    void run(const FileContext& file, std::vector<Finding>& out) const override {
        if (!in_src(file)) return;
        // The codec itself: framing + primitive (de)serialisation.
        if (file.path == "src/store/blob.cpp" || file.path == "src/store/blob.hpp" ||
            file.path == "src/store/store.cpp")
            return;
        const auto& tokens = file.tokens;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i].kind != TokenKind::kIdentifier || tokens[i].preprocessor)
                continue;
            if (member_access(tokens, i)) continue;
            const std::string& text = tokens[i].text;
            if (text == "reinterpret_cast" || text == "memcpy")
                out.push_back({file.path, tokens[i].line, id(),
                               "'" + text +
                                   "' type punning outside the blob codec; "
                                   "use std::bit_cast or the store codec"});
        }
    }
};

// --- mutable-global -----------------------------------------------------
//
// Process-wide mutable state is how two campaign runs stop being
// independent. The blessed singletons (scenario registry, obs registry,
// metric handles) are function-local statics behind accessors; anything
// mutable at namespace scope needs a suppression explaining why it is
// safe (e.g. a thread_local flag that never crosses threads).
class MutableGlobalRule final : public Rule {
public:
    const char* id() const override { return "mutable-global"; }
    const char* description() const override {
        return "mutable namespace-scope variable (hidden cross-run "
               "coupling; use function-local statics behind accessors)";
    }

    void run(const FileContext& file, std::vector<Finding>& out) const override {
        if (!in_src(file)) return;
        std::vector<Ctx> stack{Ctx::kNamespace};
        const auto& tokens = file.tokens;
        std::size_t stmt_begin = 0;  // first token of the current statement
        for (std::size_t i = 0; i < tokens.size(); ++i) {
            if (tokens[i].preprocessor) {
                stmt_begin = i + 1;
                continue;
            }
            const std::string& text = tokens[i].text;
            if (text == "{") {
                const Ctx ctx = classify(tokens, stmt_begin, i);
                // Brace-initialized globals (`std::atomic<int> g{0};`)
                // never reach the ';' scan with their head intact, so
                // check them as the brace opens.
                if (stack.back() == Ctx::kNamespace && ctx == Ctx::kOpaque)
                    check_statement(file, tokens, stmt_begin, i, out);
                stack.push_back(ctx);
                stmt_begin = i + 1;
                continue;
            }
            if (text == "}") {
                if (stack.size() > 1) stack.pop_back();
                stmt_begin = i + 1;
                continue;
            }
            if (text == ";") {
                if (stack.back() == Ctx::kNamespace)
                    check_statement(file, tokens, stmt_begin, i, out);
                stmt_begin = i + 1;
            }
        }
    }

private:
    enum class Ctx { kNamespace, kType, kOpaque };

    /// Classifies the block opened by tokens[open] == "{" from its
    /// statement head tokens [begin, open).
    static Ctx classify(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t open) {
        bool has_paren = false;
        bool has_type_key = false;
        for (std::size_t i = begin; i < open; ++i) {
            const std::string& text = tokens[i].text;
            if (text == "namespace") return Ctx::kNamespace;
            if (text == "(") has_paren = true;
            if (text == "class" || text == "struct" || text == "union" ||
                text == "enum")
                has_type_key = true;
        }
        if (open > begin && tokens[open - 1].text == "=") return Ctx::kOpaque;
        if (has_type_key && !has_paren) return Ctx::kType;
        return Ctx::kOpaque;
    }

    /// Flags the statement tokens [begin, end) when it defines a mutable
    /// namespace-scope variable.
    static void check_statement(const FileContext& file,
                                const std::vector<Token>& tokens,
                                std::size_t begin, std::size_t end,
                                std::vector<Finding>& out) {
        if (end <= begin + 1) return;  // need at least "type name"
        static const std::set<std::string> kSkipLead{
            "namespace", "using", "typedef", "template", "friend",
            "static_assert", "class",  "struct",  "union",  "enum",
            "concept",   "public", "private", "protected", "return"};
        const std::string& lead = tokens[begin].text;
        if (tokens[begin].kind != TokenKind::kIdentifier) return;
        if (kSkipLead.count(lead)) return;
        // `extern "C"` linkage blocks; plain `extern int x;` still counts.
        if (lead == "extern" && begin + 1 < end &&
            tokens[begin + 1].kind == TokenKind::kString)
            return;
        bool is_const = false;
        std::size_t first_paren = end;
        std::size_t first_assign = end;
        for (std::size_t i = begin; i < end; ++i) {
            const std::string& text = tokens[i].text;
            if (text == "const" || text == "constexpr" || text == "constinit" ||
                text == "consteval")
                is_const = true;
            if (text == "(" && first_paren == end) first_paren = i;
            if (text == "=" && first_assign == end) first_assign = i;
        }
        if (is_const) return;
        // A '(' before any '=' means a function declaration (or a
        // constructor-style initializer, which namespace scope avoids).
        if (first_paren < first_assign) return;
        out.push_back({file.path, tokens[begin].line,
                       "mutable-global",
                       "mutable variable at namespace scope; wrap it in a "
                       "function-local static accessor or justify with a "
                       "suppression"});
    }
};

// --- header-selfcontained -----------------------------------------------
//
// Every header must compile on its own: `#pragma once` first, and a
// direct include for each std symbol it names (transitive includes are
// an accident of today's include graph). The curated map below covers
// the std surface this codebase uses; unknown symbols are ignored.
class HeaderSelfContainedRule final : public Rule {
public:
    const char* id() const override { return "header-selfcontained"; }
    const char* description() const override {
        return "headers: #pragma once + a direct #include for every std "
               "symbol used";
    }

    void run(const FileContext& file, std::vector<Finding>& out) const override {
        if (!in_src(file)) return;
        const bool is_header = file.path.size() > 4 &&
                               file.path.compare(file.path.size() - 4, 4, ".hpp") == 0;
        if (!is_header) return;
        const auto& tokens = file.tokens;
        if (tokens.size() < 3 || tokens[0].text != "#" ||
            tokens[1].text != "pragma" || tokens[2].text != "once") {
            out.push_back({file.path, 1, id(),
                           "header does not open with #pragma once"});
        }

        // Direct includes: "#" "include" "<" name... ">".
        std::set<std::string> included;
        for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
            if (tokens[i].text != "#" || tokens[i + 1].text != "include" ||
                tokens[i + 2].text != "<")
                continue;
            std::string name;
            for (std::size_t j = i + 3; j < tokens.size() && tokens[j].text != ">";
                 ++j)
                name += tokens[j].text;
            included.insert(name);
        }

        const auto& required = symbol_headers();
        std::set<std::pair<std::string, std::string>> reported;
        for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
            if (tokens[i].text != "std" || tokens[i + 1].text != "::") continue;
            if (tokens[i].preprocessor) continue;
            const std::string& symbol = tokens[i + 2].text;
            const auto it = required.find(symbol);
            if (it == required.end()) continue;
            if (included.count(it->second)) continue;
            if (!reported.insert({symbol, it->second}).second) continue;
            out.push_back({file.path, tokens[i + 2].line, id(),
                           "uses std::" + symbol + " but does not directly "
                           "include <" + it->second + ">"});
        }
    }

private:
    static const std::map<std::string, std::string>& symbol_headers() {
        static const std::map<std::string, std::string> map{
            {"string", "string"},         {"to_string", "string"},
            {"getline", "string"},        {"stoi", "string"},
            {"stod", "string"},           {"stoull", "string"},
            {"string_view", "string_view"},
            {"vector", "vector"},         {"array", "array"},
            {"span", "span"},             {"map", "map"},
            {"multimap", "map"},          {"set", "set"},
            {"multiset", "set"},          {"deque", "deque"},
            {"optional", "optional"},     {"nullopt", "optional"},
            {"variant", "variant"},       {"visit", "variant"},
            {"monostate", "variant"},     {"function", "functional"},
            {"shared_ptr", "memory"},     {"unique_ptr", "memory"},
            {"weak_ptr", "memory"},       {"make_shared", "memory"},
            {"make_unique", "memory"},    {"enable_shared_from_this", "memory"},
            {"mutex", "mutex"},           {"lock_guard", "mutex"},
            {"unique_lock", "mutex"},     {"scoped_lock", "mutex"},
            {"call_once", "mutex"},       {"once_flag", "mutex"},
            {"condition_variable", "condition_variable"},
            {"thread", "thread"},         {"atomic", "atomic"},
            {"memory_order", "atomic"},   {"memory_order_relaxed", "atomic"},
            {"memory_order_acquire", "atomic"},
            {"memory_order_release", "atomic"},
            {"memory_order_seq_cst", "atomic"},
            {"chrono", "chrono"},         {"filesystem", "filesystem"},
            {"runtime_error", "stdexcept"},
            {"invalid_argument", "stdexcept"},
            {"logic_error", "stdexcept"}, {"out_of_range", "stdexcept"},
            {"domain_error", "stdexcept"},
            {"exception", "exception"},   {"exception_ptr", "exception"},
            {"current_exception", "exception"},
            {"rethrow_exception", "exception"},
            {"ostringstream", "sstream"}, {"istringstream", "sstream"},
            {"stringstream", "sstream"},  {"ostream", "ostream"},
            {"istream", "istream"},       {"ifstream", "fstream"},
            {"ofstream", "fstream"},      {"fstream", "fstream"},
            {"cout", "iostream"},         {"cerr", "iostream"},
            {"clog", "iostream"},         {"cin", "iostream"},
            {"size_t", "cstddef"},        {"byte", "cstddef"},
            {"ptrdiff_t", "cstddef"},     {"nullptr_t", "cstddef"},
            {"uint8_t", "cstdint"},       {"uint16_t", "cstdint"},
            {"uint32_t", "cstdint"},      {"uint64_t", "cstdint"},
            {"int8_t", "cstdint"},        {"int16_t", "cstdint"},
            {"int32_t", "cstdint"},       {"int64_t", "cstdint"},
            {"uintptr_t", "cstdint"},     {"intptr_t", "cstdint"},
            {"numeric_limits", "limits"},
            {"move", "utility"},          {"forward", "utility"},
            {"pair", "utility"},          {"make_pair", "utility"},
            {"swap", "utility"},          {"exchange", "utility"},
            {"declval", "utility"},
            {"tuple", "tuple"},           {"make_tuple", "tuple"},
            {"tie", "tuple"},             {"apply", "tuple"},
            {"sort", "algorithm"},        {"stable_sort", "algorithm"},
            {"min", "algorithm"},         {"max", "algorithm"},
            {"clamp", "algorithm"},       {"copy", "algorithm"},
            {"copy_n", "algorithm"},      {"fill", "algorithm"},
            {"fill_n", "algorithm"},      {"find", "algorithm"},
            {"find_if", "algorithm"},     {"transform", "algorithm"},
            {"all_of", "algorithm"},      {"any_of", "algorithm"},
            {"none_of", "algorithm"},     {"count_if", "algorithm"},
            {"lower_bound", "algorithm"}, {"upper_bound", "algorithm"},
            {"min_element", "algorithm"}, {"max_element", "algorithm"},
            {"shuffle", "algorithm"},     {"nth_element", "algorithm"},
            {"accumulate", "numeric"},    {"iota", "numeric"},
            {"reduce", "numeric"},
            {"memcpy", "cstring"},        {"memset", "cstring"},
            {"memmove", "cstring"},       {"strlen", "cstring"},
            {"snprintf", "cstdio"},       {"printf", "cstdio"},
            {"fprintf", "cstdio"},
            {"bit_cast", "bit"},          {"endian", "bit"},
            {"popcount", "bit"},          {"bit_width", "bit"},
            {"mt19937", "random"},        {"mt19937_64", "random"},
            {"random_device", "random"},
            {"uniform_int_distribution", "random"},
            {"uniform_real_distribution", "random"},
            {"normal_distribution", "random"},
            {"bernoulli_distribution", "random"},
            {"setw", "iomanip"},          {"setprecision", "iomanip"},
            {"setfill", "iomanip"},
            {"sqrt", "cmath"},            {"exp", "cmath"},
            {"log", "cmath"},             {"pow", "cmath"},
            {"floor", "cmath"},           {"ceil", "cmath"},
            {"round", "cmath"},           {"lround", "cmath"},
            {"isnan", "cmath"},           {"isfinite", "cmath"},
            {"fabs", "cmath"},            {"fmod", "cmath"},
            {"initializer_list", "initializer_list"},
            {"is_same_v", "type_traits"}, {"enable_if_t", "type_traits"},
            {"decay_t", "type_traits"},   {"conditional_t", "type_traits"},
            {"remove_reference_t", "type_traits"},
            {"is_trivially_copyable_v", "type_traits"},
            {"invoke_result_t", "type_traits"},
        };
        return map;
    }
};

}  // namespace

const std::vector<const Rule*>& all_rules() {
    static const NondeterministicSourceRule nondeterministic_source;
    static const UnorderedIterationRule unordered_iteration;
    static const RawStreamRule raw_stream;
    static const TypePunningRule type_punning;
    static const MutableGlobalRule mutable_global;
    static const HeaderSelfContainedRule header_selfcontained;
    static const std::vector<const Rule*> rules{
        &nondeterministic_source, &unordered_iteration, &raw_stream,
        &type_punning,            &mutable_global,      &header_selfcontained,
    };
    return rules;
}

}  // namespace snnfi::lint
