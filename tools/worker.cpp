// Shard worker — executes one shard of a campaign-backed fi.* scenario
// into a campaign directory (see fi/shard.hpp for the layout and the
// bit-identity contract).
//
//   $ worker --scenario=fi.quick-sweep --campaign-dir=/tmp/sweep \
//            --shard=0 --shards=4 --quick
//
// Run one worker per shard (any machine, any order, any interleaving),
// then merge with `run --campaign-dir=/tmp/sweep`. Workers checkpoint
// after every chunk of cells, so a killed worker resumes where it left
// off; with --store-dir the trained baseline and the characterisation
// sweeps are shared across all workers through the artifact store instead
// of being recomputed per process.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/session.hpp"
#include "fi/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

std::string with_env_fallback(std::string value, const char* env_name) {
    if (value.empty()) {
        if (const char* env = std::getenv(env_name)) value = env;
    }
    return value;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi campaign shard worker");
    parser.add_option("scenario", "",
                      "Campaign-backed scenario id (e.g. fi.quick-sweep; "
                      "see `run --list`)");
    parser.add_option("campaign-dir", "",
                      "Campaign directory (manifest + per-shard JSONL results)");
    parser.add_option("shard", "0", "This worker's shard index (0-based)");
    parser.add_option("shards", "1", "Total number of shards");
    parser.add_flag("quick", "Shrink workloads (must match the other shards)");
    parser.add_option("samples", "1000", "Training samples for SNN experiments");
    parser.add_option("neurons", "100", "Neurons per layer for SNN experiments");
    parser.add_option("threads", "0",
                      "Session thread-pool size (0 = SNNFI_THREADS env or all "
                      "cores)");
    parser.add_option("store-dir", "",
                      "Persistent artifact store shared between workers "
                      "(default: SNNFI_STORE_DIR env; empty = no store)");
    parser.add_option("store-max-bytes", "0",
                      "On-disk store size cap, LRU-evicted (0 = unbounded)");
    parser.add_option("trace-out", "",
                      "Write a Chrome trace-event JSON file and enable "
                      "telemetry (default: SNNFI_TRACE env)");
    parser.add_option("metrics-out", "",
                      "Write the metrics-registry JSON document and enable "
                      "telemetry (default: SNNFI_METRICS env)");
    try {
        if (!parser.parse(argc, argv)) return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n" << parser.usage();
        return 2;
    }

    const std::string scenario = parser.get("scenario");
    const std::string dir = parser.get("campaign-dir");
    if (scenario.empty() || dir.empty()) {
        std::cerr << "error: --scenario and --campaign-dir are required\n"
                  << parser.usage();
        return 2;
    }

    util::set_log_level(util::LogLevel::kWarn);
    const std::string trace_out =
        with_env_fallback(parser.get("trace-out"), "SNNFI_TRACE");
    const std::string metrics_out =
        with_env_fallback(parser.get("metrics-out"), "SNNFI_METRICS");
    if (!trace_out.empty() || !metrics_out.empty()) obs::set_enabled(true);
    const auto export_telemetry = [&] {
        if (!trace_out.empty() && !obs::write_chrome_trace(trace_out))
            std::cerr << "warning: cannot write trace to " << trace_out << "\n";
        if (!metrics_out.empty() && !obs::write_metrics(metrics_out))
            std::cerr << "warning: cannot write metrics to " << metrics_out
                      << "\n";
    };
    core::RunOptions options;
    options.quick = parser.get_bool("quick");
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    options.max_workers = static_cast<std::size_t>(parser.get_int("threads"));
    options.store_dir = parser.get("store-dir");
    options.store_max_bytes =
        static_cast<std::uint64_t>(parser.get_int("store-max-bytes"));

    const auto shard = static_cast<std::size_t>(parser.get_int("shard"));
    const auto shards = static_cast<std::size_t>(parser.get_int("shards"));

    try {
        core::Session session(options);
        const std::size_t executed =
            fi::run_shard(session, scenario, dir, shard, shards);
        std::cout << "shard " << shard << "/" << shards << " of " << scenario
                  << ": " << executed << " cell(s) executed"
                  << (executed == 0 ? " (already complete)" : "") << "\n";
        if (session.store()) {
            std::cout << "store: " << session.store()->hits() << " hit(s), "
                      << session.store()->misses() << " miss(es)\n";
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        export_telemetry();
        return 1;
    }
    export_telemetry();
    return 0;
}
