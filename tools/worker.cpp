// Shard worker — executes one shard of a campaign-backed fi.* scenario
// into a campaign directory (see fi/shard.hpp for the layout and the
// bit-identity contract).
//
//   $ worker --scenario=fi.quick-sweep --campaign-dir=/tmp/sweep \
//            --shard=0 --shards=4 --quick
//
// Run one worker per shard (any machine, any order, any interleaving),
// then merge with `run --campaign-dir=/tmp/sweep`. Workers checkpoint
// after every chunk of cells, so a killed worker resumes where it left
// off; with --store-dir the trained baseline and the characterisation
// sweeps are shared across all workers through the artifact store instead
// of being recomputed per process.
#include <iostream>
#include <string>

#include "core/session.hpp"
#include "fi/shard.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
    using namespace snnfi;

    util::ArgParser parser("snnfi campaign shard worker");
    parser.add_option("scenario", "",
                      "Campaign-backed scenario id (e.g. fi.quick-sweep; "
                      "see `run --list`)");
    parser.add_option("campaign-dir", "",
                      "Campaign directory (manifest + per-shard JSONL results)");
    parser.add_option("shard", "0", "This worker's shard index (0-based)");
    parser.add_option("shards", "1", "Total number of shards");
    parser.add_flag("quick", "Shrink workloads (must match the other shards)");
    parser.add_option("samples", "1000", "Training samples for SNN experiments");
    parser.add_option("neurons", "100", "Neurons per layer for SNN experiments");
    parser.add_option("threads", "0",
                      "Session thread-pool size (0 = SNNFI_THREADS env or all "
                      "cores)");
    parser.add_option("store-dir", "",
                      "Persistent artifact store shared between workers "
                      "(default: SNNFI_STORE_DIR env; empty = no store)");
    parser.add_option("store-max-bytes", "0",
                      "On-disk store size cap, LRU-evicted (0 = unbounded)");
    try {
        if (!parser.parse(argc, argv)) return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n" << parser.usage();
        return 2;
    }

    const std::string scenario = parser.get("scenario");
    const std::string dir = parser.get("campaign-dir");
    if (scenario.empty() || dir.empty()) {
        std::cerr << "error: --scenario and --campaign-dir are required\n"
                  << parser.usage();
        return 2;
    }

    util::set_log_level(util::LogLevel::kWarn);
    core::RunOptions options;
    options.quick = parser.get_bool("quick");
    options.train_samples = static_cast<std::size_t>(parser.get_int("samples"));
    options.n_neurons = static_cast<std::size_t>(parser.get_int("neurons"));
    options.max_workers = static_cast<std::size_t>(parser.get_int("threads"));
    options.store_dir = parser.get("store-dir");
    options.store_max_bytes =
        static_cast<std::uint64_t>(parser.get_int("store-max-bytes"));

    const auto shard = static_cast<std::size_t>(parser.get_int("shard"));
    const auto shards = static_cast<std::size_t>(parser.get_int("shards"));

    try {
        core::Session session(options);
        const std::size_t executed =
            fi::run_shard(session, scenario, dir, shard, shards);
        std::cout << "shard " << shard << "/" << shards << " of " << scenario
                  << ": " << executed << " cell(s) executed"
                  << (executed == 0 ? " (already complete)" : "") << "\n";
        if (session.store()) {
            std::cout << "store: " << session.store()->hits() << " hit(s), "
                      << session.store()->misses() << " miss(es)\n";
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
